"""Property-based tests on the simulated-model and parsing layers."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.parsing import parse_mcq, parse_true_false
from repro.llm.profiles import ModelProfile
from repro.llm.prompt_parsing import parse_prompt
from repro.llm.prompting import PromptSetting
from repro.llm.registry import MODEL_NAMES, get_profile
from repro.questions.model import Answer, MCQ_LETTERS, QuestionKind
from repro.questions.templates import mcq_prompt, true_false_prompt
from repro.taxonomy.node import Domain

# Concept-name alphabet: printable words without template keywords.
_names = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"
                             "ABCDEFGHIJKLMNOPQRSTUVWXYZ- "),
    min_size=1, max_size=30).map(str.strip).filter(
    lambda s: s and " a type of " not in f" {s} "
    and not s.startswith(("Is ", "Are "))
    and "supertype" not in s)


@settings(max_examples=80, deadline=None)
@given(_names, _names, st.sampled_from(list(Domain)),
       st.integers(min_value=0, max_value=2))
def test_tf_prompt_round_trips_for_any_names(child, parent, domain,
                                             variant):
    prompt = true_false_prompt(domain, child, parent, variant)
    parsed = parse_prompt(prompt)
    assert parsed.child_name == child
    assert parsed.asked_name == parent
    assert parsed.variant == variant


@settings(max_examples=60, deadline=None)
@given(_names, st.lists(_names, min_size=4, max_size=4, unique=True),
       st.sampled_from(list(Domain)))
def test_mcq_prompt_round_trips_for_any_names(child, options, domain):
    prompt = mcq_prompt(domain, child, tuple(options))
    parsed = parse_prompt(prompt)
    assert parsed.child_name == child
    assert list(parsed.options) == options


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=120))
def test_tf_parser_never_crashes(text):
    assert parse_true_false(text) in Answer


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=120))
def test_mcq_parser_never_crashes(text):
    assert parse_mcq(text) in Answer


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(MODEL_NAMES)),
       st.sampled_from(["ebay", "schema", "glottolog", "ncbi"]),
       st.sampled_from(list(QuestionKind)))
def test_kind_params_stay_probabilities(model_name, taxonomy_key,
                                        kind):
    profile = get_profile(model_name)
    accuracy, miss = profile.kind_params(kind, taxonomy_key)
    assert 0.0 <= accuracy <= 1.0
    assert 0.0 <= miss <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(MODEL_NAMES)),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=0.94))
def test_conditional_accuracy_bounded(model_name, accuracy, miss):
    profile = get_profile(model_name)
    if accuracy + miss > 1.0:
        accuracy = 1.0 - miss
    conditional = profile.conditional_accuracy(accuracy, miss)
    assert 0.0 <= conditional <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(MODEL_NAMES)),
       st.floats(min_value=0.0, max_value=1.0))
def test_setting_adjustments_keep_miss_in_range(model_name, miss):
    profile = get_profile(model_name)
    for setting in PromptSetting:
        adjusted = profile.miss_under(miss, setting)
        assert 0.0 <= adjusted <= 0.999 or adjusted == miss


@settings(max_examples=40, deadline=None)
@given(st.sampled_from(list(MODEL_NAMES)))
def test_fewshot_never_raises_miss(model_name):
    profile = get_profile(model_name)
    for miss in (0.0, 0.2, 0.7, 0.99):
        assert profile.miss_under(miss, PromptSetting.FEW_SHOT) \
            <= miss + 1e-12


def test_profiles_are_self_consistent():
    for model_name in MODEL_NAMES:
        profile = get_profile(model_name)
        assert isinstance(profile, ModelProfile)
        assert profile.name == model_name
        if profile.architecture == "api":
            assert profile.params_b is None
        else:
            assert profile.params_b > 0


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(list(MCQ_LETTERS)))
def test_mcq_letter_parses_back(letter):
    assert parse_mcq(f"{letter}) whatever").value == letter
