"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestCli:
    def test_stats(self, capsys):
        out = _run(capsys, "stats")
        assert "NCBI" in out
        assert "2190125" in out

    def test_datasets(self, capsys):
        out = _run(capsys, "datasets", "--taxonomies", "ebay",
                   "--sample", "10")
        assert "level 1-root" in out
        assert "total" in out

    def test_table(self, capsys):
        out = _run(capsys, "table", "--dataset", "hard", "--models",
                   "GPT-4", "--taxonomies", "ebay", "--sample", "20")
        assert "GPT-4" in out
        assert "eBay" in out
        assert "mean |dA|" in out

    def test_levels(self, capsys):
        out = _run(capsys, "levels", "--models", "Flan-T5-3B",
                   "--taxonomies", "ebay", "--sample", "15")
        assert "level 2-1" in out

    def test_ask_parses_prompt(self, capsys):
        out = _run(capsys, "ask", "GPT-4",
                   "Is Zorblax a type of Quux? answer with "
                   "(Yes/No/I don't know)")
        assert "know" in out

    def test_case_study(self, capsys):
        out = _run(capsys, "case-study", "--sample", "30")
        assert "precision" in out
        assert "59" in out

    def test_popularity(self, capsys):
        out = _run(capsys, "popularity")
        assert "common" in out
        assert "specialized" in out

    def test_scalability(self, capsys):
        out = _run(capsys, "scalability")
        assert "Flan-T5s" in out
        assert "scaling exponents" in out

    def test_table_with_engine_flags(self, capsys):
        out = _run(capsys, "table", "--models", "GPT-4",
                   "--taxonomies", "ebay", "--sample", "10",
                   "--workers", "4")
        assert "GPT-4" in out
        assert "Engine telemetry" in out
        assert "utilization" in out

    def test_engine_stats(self, capsys, tmp_path):
        cache_path = str(tmp_path / "cache.json")
        out = _run(capsys, "engine-stats", "--workers", "2",
                   "--sample", "10", "--cache", cache_path)
        assert "Engine telemetry" in out
        assert "cache_hits" in out
        # Warm rerun served from the persisted cache: zero calls.
        warm = _run(capsys, "engine-stats", "--workers", "2",
                    "--sample", "10", "--cache", cache_path)
        row = warm.splitlines()[-1].split()
        assert row[1] == "0"  # calls column

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "--models", "GPT-5"])

    def test_unknown_taxonomy_rejected(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--taxonomies", "wordnet"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliExtensions:
    def test_consistency(self, capsys):
        out = _run(capsys, "consistency", "--models", "GPT-4",
                   "--taxonomies", "ebay", "--edges", "10")
        assert "symmetry violations" in out

    def test_deploy(self, capsys):
        out = _run(capsys, "deploy", "--models", "Flan-T5-3B",
                   "Llama-2-70B")
        assert "tensor_parallel" in out
        assert "Llama-2-70B" in out

    def test_deploy_rejects_api_models(self):
        with pytest.raises(SystemExit):
            main(["deploy", "--models", "GPT-4"])

    def test_errors_breakdown(self, capsys):
        out = _run(capsys, "errors", "--model", "GPT-4", "--taxonomy",
                   "ebay", "--sample", "15")
        assert "false-yes" in out
