"""Tests for the popularity estimator and the embedded paper anchors."""

from __future__ import annotations

import pytest

from repro.data.paper_figures import (LEVEL_SHAPES, PROMPTING_EFFECTS,
                                      SCALABILITY, latent_accuracy)
from repro.data.paper_tables import (MODEL_ORDER, PAPER_RESULTS,
                                     TAXONOMY_ORDER, paper_anchor)
from repro.generators.registry import TAXONOMY_KEYS, get_spec
from repro.popularity.estimator import (concept_hits,
                                        estimate_popularity,
                                        popularity_ranking)


class TestPopularity:
    def test_hits_deterministic(self):
        assert concept_hits("ebay", "Electronics") \
            == concept_hits("ebay", "Electronics")

    def test_hits_positive(self):
        for key in TAXONOMY_KEYS:
            assert concept_hits(key, "anything") > 0

    def test_estimate_samples_100_by_default(self):
        estimate = estimate_popularity("ebay")
        assert estimate.sample_size == 100

    def test_estimate_caps_at_population(self):
        estimate = estimate_popularity("ebay", sample=10_000)
        assert estimate.sample_size == 595

    def test_ranking_covers_all_taxonomies(self):
        ranking = popularity_ranking(sample=30)
        assert {est.taxonomy_key for est in ranking} \
            == set(TAXONOMY_KEYS)

    def test_ebay_most_popular_ncbi_least(self):
        ranking = popularity_ranking()
        assert ranking[0].taxonomy_key == "ebay"
        assert ranking[-1].taxonomy_key == "ncbi"

    def test_seed_changes_sample(self):
        first = estimate_popularity("amazon", seed="a")
        second = estimate_popularity("amazon", seed="b")
        assert first.mean_hits != second.mean_hits


class TestPaperAnchors:
    def test_all_models_present_in_all_tables(self):
        for table in PAPER_RESULTS.values():
            assert set(table) == set(MODEL_ORDER)
            for row in table.values():
                assert set(row) == set(TAXONOMY_ORDER)

    def test_accuracy_plus_miss_at_most_one(self):
        for kind, table in PAPER_RESULTS.items():
            for model, row in table.items():
                for key, (accuracy, miss) in row.items():
                    assert accuracy + miss <= 1.0 + 1e-9, \
                        (kind, model, key)

    def test_values_in_unit_interval(self):
        for table in PAPER_RESULTS.values():
            for row in table.values():
                for accuracy, miss in row.values():
                    assert 0.0 <= accuracy <= 1.0
                    assert 0.0 <= miss <= 1.0

    def test_known_spot_values(self):
        # A few cells transcribed twice as a typo tripwire.
        assert paper_anchor("hard", "GPT-4", "icd10cm") == (.917, .001)
        assert paper_anchor("easy", "Llama-3-8B", "schema") \
            == (.819, .000)
        assert paper_anchor("mcq", "Falcon-7B", "google") \
            == (.275, .000)
        assert paper_anchor("hard", "LLMs4OL", "glottolog") \
            == (.711, .000)

    def test_zero_miss_models(self):
        for kind in ("easy", "hard", "mcq"):
            for model in ("Flan-T5-3B", "Flan-T5-11B", "LLMs4OL"):
                for key in TAXONOMY_ORDER:
                    assert paper_anchor(kind, model, key)[1] == 0.0

    def test_level_shapes_lengths_match_question_levels(self):
        for key in TAXONOMY_KEYS:
            assert len(LEVEL_SHAPES[key]) \
                == get_spec(key).num_levels - 1

    def test_ncbi_shape_has_leaf_uplift(self):
        shape = LEVEL_SHAPES["ncbi"]
        assert shape[-1] > shape[-2]
        assert min(shape) < 0 < max(shape)

    def test_oae_shape_rises(self):
        shape = LEVEL_SHAPES["oae"]
        assert shape[-1] > shape[0]

    def test_prompting_effects_cover_all_models(self):
        assert set(PROMPTING_EFFECTS) == set(MODEL_ORDER)

    def test_fewshot_factors_never_increase_miss(self):
        for few, _ in PROMPTING_EFFECTS.values():
            assert 0.0 < few <= 1.0

    def test_cot_factors_never_decrease_miss(self):
        for _, cot in PROMPTING_EFFECTS.values():
            assert cot >= 1.0

    def test_scalability_covers_open_models(self):
        api_only = {"GPT-3.5", "GPT-4", "Claude-3"}
        assert set(SCALABILITY) == set(MODEL_ORDER) - api_only

    def test_latent_accuracy_bounds(self):
        for model in MODEL_ORDER:
            assert 0.0 < latent_accuracy(model) < 1.0
