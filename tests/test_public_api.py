"""Public API surface checks: imports, docs, and integration smoke."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro.llm.oracle import default_oracle
from repro.llm.prompt_parsing import parse_prompt
from repro.questions.instance_typing import build_instance_typing_pools
from repro.questions.model import DatasetKind, QuestionKind
from repro.questions.templates import render_question

PUBLIC_MODULES = [
    "repro.taxonomy", "repro.generators", "repro.questions",
    "repro.llm", "repro.core", "repro.engine", "repro.hybrid",
    "repro.popularity", "repro.experiments", "repro.stats",
    "repro.data", "repro.loaders", "repro.figures", "repro.errors",
    "repro.store", "repro.runs", "repro.obs", "repro.serve",
    "repro.cli", "repro.search",
]


class TestApiSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_modules_import_and_are_documented(self,
                                                      module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES[:-2])
    def test_package_all_entries_exist(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_public_classes_documented(self):
        for name in ("TaxoGlimpse", "Taxonomy", "TaxonomyBuilder",
                     "SimulatedLLM", "HybridTaxonomy",
                     "EvaluationRunner"):
            assert getattr(repro, name).__doc__


class TestProductInstanceOracle:
    """The oracle grounds product-instance prompts (Fig. 6 pipeline)."""

    @pytest.fixture(scope="class")
    def typing_pools(self):
        return build_instance_typing_pools("google", sample_size=15)

    def test_product_positive_pairs_resolve_true(self, typing_pools):
        oracle = default_oracle()
        resolved = 0
        for question in typing_pools.total(DatasetKind.HARD):
            if question.kind is not QuestionKind.POSITIVE:
                continue
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert resolution.truth
            assert resolution.is_instance
            resolved += 1
        assert resolved > 0

    def test_product_negative_pairs_resolve_false(self, typing_pools):
        oracle = default_oracle()
        for question in typing_pools.total(DatasetKind.HARD)[:40]:
            if question.kind is QuestionKind.POSITIVE:
                continue
            resolution = oracle.resolve(
                parse_prompt(render_question(question)))
            assert resolution is not None
            assert not resolution.truth
