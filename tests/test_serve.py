"""Tests for the benchmark-as-a-service HTTP layer (``repro.serve``).

The acceptance criteria of the serving tentpole live here: REST
responses are byte-equal to the CLI's ``--json`` paths (one shared
builder, checked end to end), a run submitted over ``POST /runs`` can
be watched live by many concurrent SSE clients whose final streamed
snapshots agree bit-for-bit with each other and with the post-hoc
``load_run`` state, tenants are isolated, and malformed requests of
every shape produce structured JSON errors instead of stack traces.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.runs import RunRequest, execute_run, load_run
from repro.serve import (DEFAULT_TENANT, TENANT_HEADER, ReproServer,
                         run_result_payload)

SMALL = dict(models=("GPT-4",), taxonomy_keys=("ebay",),
             sample_size=8)
SMALL_BODY = {"models": ["GPT-4"], "taxonomy_keys": ["ebay"],
              "sample_size": 8}


@pytest.fixture()
def server(tmp_path):
    srv = ReproServer(root=tmp_path / "runs", port=0,
                      poll_interval_s=0.05, idle_grace_s=2.0).start()
    yield srv
    srv.close()


# ----------------------------------------------------------------------
# Minimal stdlib HTTP client helpers
# ----------------------------------------------------------------------
def _request(server, path, method="GET", body=None, headers=None,
             raw=None):
    """(status, decoded JSON) of one request; errors decode too."""
    data = raw
    request_headers = dict(headers or {})
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        request_headers["Content-Type"] = "application/json"
    request = urllib.request.Request(server.url + path, method=method,
                                     data=data,
                                     headers=request_headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(server, path, headers=None):
    return _request(server, path, headers=headers)


def _post(server, path, body=None, headers=None, raw=None):
    return _request(server, path, method="POST", body=body,
                    headers=headers, raw=raw)


def _wait_job(server, job_id, headers=None, deadline_s=60.0):
    """Poll ``/jobs/<id>`` until it leaves the active states."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        status, job = _get(server, f"/jobs/{job_id}", headers=headers)
        assert status == 200
        if job["state"] in ("finished", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never settled")


def _read_sse(server, path, headers=None, timeout_s=60.0):
    """Every ``(kind, raw_data)`` frame of one SSE stream, to EOF."""
    request = urllib.request.Request(server.url + path,
                                     headers=dict(headers or {}))
    frames = []
    with urllib.request.urlopen(request,
                                timeout=timeout_s) as response:
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/event-stream"
        kind, data = None, None
        for line in response:
            line = line.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue                       # keep-alive comment
            if line.startswith("event: "):
                kind = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
            elif not line:
                if kind is not None:
                    frames.append((kind, data))
                if kind == "done":
                    break
                kind, data = None, None
    return frames


def _cli_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


def _seed_run(server, tenant=DEFAULT_TENANT):
    """Execute one small run directly into the server's registry."""
    registry = server.registry_for(tenant)
    return execute_run(RunRequest(**SMALL), registry=registry)


# ----------------------------------------------------------------------
# REST payloads == CLI --json payloads (shared builders, end to end)
# ----------------------------------------------------------------------
class TestRestMatchesCli:
    def test_runs_list(self, server, capsys):
        _seed_run(server)
        status, payload = _get(server, "/runs")
        assert status == 200
        assert payload == _cli_json(capsys, [
            "runs", "list", "--json", "--runs-dir", str(server.root)])
        assert len(payload) == 1 and payload[0]["finished"]

    def test_runs_show(self, server, capsys):
        result = _seed_run(server)
        status, payload = _get(server, f"/runs/{result.run_id}")
        assert status == 200
        assert payload == _cli_json(capsys, [
            "runs", "show", result.run_id, "--json",
            "--runs-dir", str(server.root)])
        assert payload["finished"] is True
        assert all(cell["status"] == "done"
                   for cell in payload["cells"])

    def test_runs_diff(self, server, capsys):
        first = _seed_run(server)
        second = _seed_run(server)
        path = f"/runs/{first.run_id}/diff/{second.run_id}"
        status, payload = _get(server, path)
        assert status == 200
        assert payload == _cli_json(capsys, [
            "runs", "diff", first.run_id, second.run_id, "--json",
            "--runs-dir", str(server.root)])
        assert payload["identical"] is True

    def test_run_result_endpoint_matches_run_json_summary(
            self, server, capsys, tmp_path):
        runs_dir = str(server.root)
        cli = _cli_json(capsys, [
            "run", "--models", "GPT-4", "--taxonomies", "ebay",
            "--sample", "8", "--json", "--runs-dir", runs_dir])
        status, rest = _get(server, f"/runs/{cli['run_id']}/result")
        assert status == 200
        # The endpoint rebuilds from the ledger, so the live-only
        # bookkeeping differs (evaluated vs replayed); the scored
        # substance must agree exactly.
        assert rest["run_id"] == cli["run_id"]
        assert rest["request"] == cli["request"]
        assert rest["cells"] == cli["cells"]
        assert rest["stats"] == cli["stats"]
        assert cli["evaluated"] == 32 and cli["replayed"] == 0
        assert rest["replayed"] == 32 and rest["evaluated"] == 0

    def test_trail_endpoints_match_obs_cli(self, server, capsys):
        registry = server.registry_for(DEFAULT_TENANT)
        result = execute_run(RunRequest(**SMALL, trail=True),
                             registry=registry)
        status, one = _get(server, f"/runs/{result.run_id}/trail/0")
        assert status == 200
        assert one == _cli_json(capsys, [
            "obs", "why", result.run_id, "0", "--json",
            "--runs-dir", str(server.root)])
        assert one["index"] == 0
        assert one["trail"] is not None
        status, many = _get(server, f"/runs/{result.run_id}/trails")
        assert status == 200
        assert many == _cli_json(capsys, [
            "obs", "trails", result.run_id, "--json",
            "--runs-dir", str(server.root)])
        assert many["totals"]["with_trail"] > 0
        # Out-of-range index and non-integer index are 4xx, not 500s.
        status, error = _get(server,
                             f"/runs/{result.run_id}/trail/9999")
        assert status == 400 and "9999" in error["error"]["message"]
        status, error = _get(server, f"/runs/{result.run_id}/trail/x")
        assert status == 400

    def test_runs_resume_json_summary(self, server, capsys):
        result = _seed_run(server)
        cli = _cli_json(capsys, [
            "runs", "resume", result.run_id, "--json",
            "--runs-dir", str(server.root)])
        assert cli["run_id"] == result.run_id
        assert cli["replayed"] == result.evaluated
        assert cli["evaluated"] == 0
        assert cli == run_result_payload(
            load_run(result.run_id,
                     registry=server.registry_for(DEFAULT_TENANT)))


# ----------------------------------------------------------------------
# Browsing endpoints
# ----------------------------------------------------------------------
class TestBrowsing:
    def test_index_and_health(self, server):
        status, index = _get(server, "/")
        assert status == 200
        assert index["service"] == "repro-serve"
        assert "GET /runs/<id>/events" in index["endpoints"]
        status, health = _get(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["runs_root"] == str(server.root)
        assert health["jobs"] == {"total": 0, "active": 0}

    def test_taxonomies_and_detail(self, server):
        status, rows = _get(server, "/taxonomies")
        assert status == 200
        assert len(rows) == 10
        assert {"key", "name", "domain", "levels", "trees",
                "entities"} <= set(rows[0])
        status, detail = _get(server, "/taxonomies/ebay")
        assert status == 200
        assert detail["key"] == "ebay"
        assert detail["entities_built"] == detail["entities"]
        assert len(detail["level_widths_built"]) == detail["levels"]

    def test_models_and_pools(self, server):
        status, models = _get(server, "/models")
        assert status == 200
        assert "GPT-4" in models["models"]
        status, pool = _get(server, "/pools/ebay?sample=10")
        assert status == 200
        assert pool["taxonomy"] == "ebay"
        assert pool["sample_size"] == 10
        assert pool["levels"][-1]["level"] == "total"


# ----------------------------------------------------------------------
# Run submission + background execution
# ----------------------------------------------------------------------
class TestSubmission:
    def test_post_runs_executes_in_background(self, server):
        status, accepted = _post(server, "/runs", body=SMALL_BODY)
        assert status == 202
        run_id = accepted["run_id"]
        assert accepted["job"]["kind"] == "run"
        assert accepted["job"]["run_id"] == run_id
        # Admission is synchronous: the run id resolves immediately,
        # even before the first question is answered.
        status, shown = _get(server, f"/runs/{run_id}")
        assert status == 200
        job = _wait_job(server, accepted["job"]["job_id"])
        assert job["state"] == "finished", job["error"]
        assert job["evaluated"] == 32 and job["cells"] == 1
        assert job["stats"]["records"] == 32
        status, shown = _get(server, f"/runs/{run_id}")
        assert shown["finished"] is True
        loaded = load_run(run_id,
                          registry=server.registry_for(DEFAULT_TENANT))
        assert sum(cell.metrics.n
                   for cell in loaded.cells.values()) == 32

    def test_post_resume_replays_finished_run(self, server):
        result = _seed_run(server)
        status, accepted = _post(server,
                                 f"/runs/{result.run_id}/resume")
        assert status == 202
        job = _wait_job(server, accepted["job"]["job_id"])
        assert job["state"] == "finished", job["error"]
        assert job["kind"] == "resume"
        assert job["replayed"] == result.evaluated
        assert job["evaluated"] == 0

    def test_jobs_listing_tracks_submissions(self, server):
        status, jobs = _get(server, "/jobs")
        assert status == 200 and jobs == []
        _, accepted = _post(server, "/runs", body=SMALL_BODY)
        _wait_job(server, accepted["job"]["job_id"])
        status, jobs = _get(server, "/jobs")
        assert [job["job_id"] for job in jobs] == \
            [accepted["job"]["job_id"]]


# ----------------------------------------------------------------------
# Live SSE streaming (the tentpole acceptance test)
# ----------------------------------------------------------------------
class TestLiveStreaming:
    VIEWERS = 10

    def test_many_concurrent_viewers_converge_bitwise(self, server):
        _, accepted = _post(server, "/runs",
                            body={**SMALL_BODY, "sample_size": 16})
        run_id = accepted["run_id"]
        results: list[list] = [None] * self.VIEWERS
        errors: list[BaseException] = []

        def view(slot: int) -> None:
            try:
                results[slot] = _read_sse(server,
                                          f"/runs/{run_id}/events")
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=view, args=(slot,))
                   for slot in range(self.VIEWERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert all(frames is not None for frames in results)
        finals = []
        for frames in results:
            kinds = [kind for kind, _ in frames]
            assert kinds[-1] == "done"
            snapshots = [data for kind, data in frames
                         if kind == "snapshot"]
            assert snapshots, "viewer saw no snapshot at all"
            finals.append(snapshots[-1])
        # Every viewer's final snapshot is bit-for-bit identical.
        assert len(set(finals)) == 1
        final = json.loads(finals[0])
        # ... and agrees exactly with the post-hoc replayed state.
        loaded = load_run(run_id,
                          registry=server.registry_for(DEFAULT_TENANT))
        assert final["finished"] is True
        assert final["status"] == "finished"
        planned = sum(cell.metrics.n
                      for cell in loaded.cells.values())
        assert final["questions_done"] == planned
        correct = sum(
            round(cell.metrics.accuracy * cell.metrics.n)
            for cell in loaded.cells.values())
        assert final["correct"] == correct
        by_cell = {key.cell_id: cell
                   for key, cell in loaded.cells.items()}
        assert len(final["cells"]) == len(by_cell)
        for cell in final["cells"]:
            assert cell["complete"] is True
            assert cell["done"] == by_cell[cell["cell"]].metrics.n

    def test_late_subscriber_is_served_from_cached_final(self,
                                                         server):
        _, accepted = _post(server, "/runs", body=SMALL_BODY)
        run_id = accepted["run_id"]
        _wait_job(server, accepted["job"]["job_id"])
        first = _read_sse(server, f"/runs/{run_id}/events")
        again = _read_sse(server, f"/runs/{run_id}/events")
        for frames in (first, again):
            assert [kind for kind, _ in frames][-1] == "done"
            final = json.loads([data for kind, data in frames
                                if kind == "snapshot"][-1])
            assert final["finished"] is True
        # The cached fast path costs no broadcast.
        assert server.hub.stats()["cached_finals"] >= 1
        assert server.hub.stats()["broadcasts"] == 0

    def test_limit_query_truncates_the_stream(self, server):
        result = _seed_run(server)
        frames = _read_sse(server,
                           f"/runs/{result.run_id}/events?limit=1")
        snapshots = [data for kind, data in frames
                     if kind == "snapshot"]
        assert len(snapshots) == 1

    def test_progress_endpoint_serves_one_snapshot(self, server):
        result = _seed_run(server)
        status, snapshot = _get(server,
                                f"/runs/{result.run_id}/progress")
        assert status == 200
        assert snapshot["run_id"] == result.run_id
        assert snapshot["finished"] is True
        assert snapshot["questions_done"] == result.evaluated


# ----------------------------------------------------------------------
# Flow control: one slow subscriber must never hurt the broadcast
# ----------------------------------------------------------------------
class TestFlowControl:
    def test_bounded_queue_drops_oldest_never_blocks(self,
                                                     monkeypatch):
        from repro.serve import hub as hub_module
        monkeypatch.setattr(hub_module, "SUBSCRIBER_QUEUE_SLOTS", 8)
        subscription = hub_module.Subscription()
        # Publish far past capacity without a consumer: must return
        # promptly every time (a blocking put would hang the test).
        for seq in range(50):
            subscription.publish("snapshot", {"seq": seq})
        subscription.end({"run_id": "r"})
        assert subscription._queue.qsize() <= 8
        frames = list(subscription.events(timeout_s=0.2))
        kinds = [kind for kind, _ in frames]
        assert kinds[-1] == "done"
        seqs = [payload["seq"] for kind, payload in frames
                if kind == "snapshot"]
        # Oldest frames were dropped; the survivors are the newest,
        # contiguous, in publish order, ending with the final one.
        assert 0 < len(seqs) < 50
        assert seqs == list(range(seqs[0], 50))
        assert seqs[-1] == 49

    def test_slow_subscriber_keeps_final_fast_peers_unaffected(
            self, server, monkeypatch):
        from repro.serve import hub as hub_module
        monkeypatch.setattr(hub_module, "SUBSCRIBER_QUEUE_SLOTS", 3)
        registry = server.registry_for(DEFAULT_TENANT)
        _, accepted = _post(server, "/runs",
                            body={**SMALL_BODY, "sample_size": 16})
        run_id = accepted["run_id"]
        # The slow client subscribes but consumes nothing while the
        # run streams — its queue saturates at 3 slots.
        slow = server.hub.subscribe(DEFAULT_TENANT, run_id, registry)
        # A fast client must still stream to completion: the
        # broadcaster never blocks on the saturated peer.
        fast_frames = _read_sse(server, f"/runs/{run_id}/events")
        assert [kind for kind, _ in fast_frames][-1] == "done"
        fast_final = json.loads([data for kind, data in fast_frames
                                 if kind == "snapshot"][-1])
        assert slow._queue.qsize() <= 4        # 3 slots + "done"
        slow_frames = list(slow.events(timeout_s=5.0))
        slow.close()
        assert [kind for kind, _ in slow_frames][-1] == "done"
        slow_final = [payload for kind, payload in slow_frames
                      if kind == "snapshot"][-1]
        # Drop-oldest preserved the final frame bit for bit.
        assert slow_final == fast_final
        assert slow_final["finished"] is True


# ----------------------------------------------------------------------
# Tenancy
# ----------------------------------------------------------------------
class TestTenancy:
    TEAM = {TENANT_HEADER: "team-a"}

    def test_tenants_have_disjoint_registries(self, server):
        ours = _seed_run(server)
        # A different request, so the fingerprint-derived run ids
        # cannot collide across the two namespaces.
        theirs = execute_run(
            RunRequest(**{**SMALL, "sample_size": 6}),
            registry=server.registry_for("team-a"))
        status, default_runs = _get(server, "/runs")
        assert [run["run_id"] for run in default_runs] == \
            [ours.run_id]
        status, team_runs = _get(server, "/runs", headers=self.TEAM)
        assert [run["run_id"] for run in team_runs] == \
            [theirs.run_id]
        # A tenant cannot see another tenant's run.
        status, _ = _get(server, f"/runs/{ours.run_id}",
                         headers=self.TEAM)
        assert status == 404

    def test_tenant_registry_nests_under_root(self, server):
        registry = server.registry_for("team-a")
        assert registry.root == server.root / "tenants" / "team-a"
        assert server.registry_for(DEFAULT_TENANT).root == server.root

    def test_jobs_are_tenant_scoped(self, server):
        _, accepted = _post(server, "/runs", body=SMALL_BODY,
                            headers=self.TEAM)
        _wait_job(server, accepted["job"]["job_id"],
                  headers=self.TEAM)
        status, default_jobs = _get(server, "/jobs")
        assert default_jobs == []
        status, _ = _get(server,
                         f"/jobs/{accepted['job']['job_id']}")
        assert status == 404


# ----------------------------------------------------------------------
# Hardening: every malformed request gets a structured JSON error
# ----------------------------------------------------------------------
class TestHardening:
    def _expect_error(self, server, path, status, code, method="GET",
                      body=None, headers=None, raw=None):
        got_status, payload = _request(server, path, method=method,
                                       body=body, headers=headers,
                                       raw=raw)
        assert got_status == status, payload
        assert payload["error"]["status"] == status
        assert payload["error"]["code"] == code
        assert payload["error"]["message"]

    def test_unknown_routes_404(self, server):
        self._expect_error(server, "/nope", 404, "not-found")
        self._expect_error(server, "/runs/x/nope", 404, "not-found")

    def test_unknown_run_ids_404(self, server):
        self._expect_error(server, "/runs/zzz", 404, "unknown-run")
        self._expect_error(server, "/runs/zzz/result", 404,
                           "unknown-run")
        self._expect_error(server, "/runs/zzz/events", 404,
                           "unknown-run")
        self._expect_error(server, "/runs/a/diff/b", 404,
                           "unknown-run")
        self._expect_error(server, "/runs/zzz/resume", 404,
                           "unknown-run", method="POST")

    def test_unknown_taxonomy_pool_job_404(self, server):
        self._expect_error(server, "/taxonomies/zzz", 404,
                           "not-found")
        self._expect_error(server, "/pools/zzz", 404, "not-found")
        self._expect_error(server, "/jobs/zzz", 404, "not-found")

    def test_wrong_method_405_with_allow(self, server):
        request = urllib.request.Request(server.url + "/runs",
                                         method="PUT", data=b"{}")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET"

    def test_bad_bodies_400(self, server):
        self._expect_error(server, "/runs", 400, "bad-request",
                           method="POST")        # no body at all
        self._expect_error(server, "/runs", 400, "bad-request",
                           method="POST", raw=b"{not json")
        self._expect_error(server, "/runs", 400, "bad-request",
                           method="POST", raw=b"[1, 2]")
        self._expect_error(server, "/runs", 400, "bad-request",
                           method="POST", body={"bogus_field": 1})
        self._expect_error(server, "/runs", 400, "bad-request",
                           method="POST",
                           body={"models": ["No-Such-Model"]})

    def test_oversized_body_413(self, server):
        huge = b"x" * (server.max_body_bytes + 1)
        self._expect_error(server, "/runs", 413, "payload-too-large",
                           method="POST", raw=huge)

    def test_bad_query_values_400(self, server):
        self._expect_error(server, "/pools/ebay?sample=many", 400,
                           "bad-request")
        result = _seed_run(server)
        self._expect_error(server,
                           f"/runs/{result.run_id}/events?limit=x",
                           400, "bad-request")

    def test_hostile_tenant_names_400(self, server):
        for name in ("../escape", "a/b", ".hidden", "x" * 65):
            self._expect_error(server, "/runs", 400, "bad-request",
                               headers={TENANT_HEADER: name})
