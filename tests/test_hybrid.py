"""Tests for the hybrid taxonomy and the Section 5.3 case study."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError
from repro.hybrid.case_study import (CaseStudyConfig, run_case_study,
                                     spec_maintenance_saving)
from repro.hybrid.hybrid_taxonomy import HybridTaxonomy
from repro.hybrid.membership import MembershipModel
from repro.llm.base import StaticResponder
from repro.llm.registry import get_model


def _by_name(taxonomy, name):
    for node in taxonomy:
        if node.name == name:
            return node
    raise AssertionError(name)


class TestHybridTaxonomy:
    def test_cut_level_bounds(self, toy_taxonomy):
        with pytest.raises(TaxonomyError):
            HybridTaxonomy(toy_taxonomy, 5, StaticResponder("m", "No."))

    def test_explicit_nodes_below_cut_are_virtual(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        leaf = _by_name(toy_taxonomy, "Headphones")
        assert leaf.node_id not in hybrid
        with pytest.raises(TaxonomyError):
            hybrid.node(leaf.node_id)

    def test_explicit_navigation_works(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        audio = _by_name(toy_taxonomy, "Audio")
        assert hybrid.parent(audio.node_id).name == "Electronics"

    def test_children_stop_at_frontier(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        audio = _by_name(toy_taxonomy, "Audio")
        assert hybrid.children(audio.node_id) == []

    def test_saving_fraction(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        assert hybrid.saving.removed_entities == 5
        assert hybrid.saving.fraction == pytest.approx(0.5)

    def test_frontier(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        assert {n.name for n in hybrid.frontier()} \
            == {"Audio", "Video", "Furniture"}

    def test_locate_with_always_yes_returns_first(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "Yes."))
        located = hybrid.locate("Pencil")
        assert located is hybrid.frontier()[0]

    def test_locate_with_always_no_returns_none(self, toy_taxonomy):
        hybrid = HybridTaxonomy(toy_taxonomy, 1,
                                StaticResponder("m", "No."))
        assert hybrid.locate("Pencil") is None

    def test_locate_with_simulated_model_on_real_taxonomy(
            self, ebay_taxonomy):
        # A strong simulated model locates a leaf's real parent among
        # the frontier candidates most of the time.
        hybrid = HybridTaxonomy(ebay_taxonomy, 1, get_model("GPT-4"))
        hits = 0
        leaves = ebay_taxonomy.nodes_at_level(2)[:20]
        for leaf in leaves:
            located = hybrid.locate(
                leaf.name,
                candidates=[ebay_taxonomy.parent(leaf.node_id)])
            if located is not None:
                hits += 1
        assert hits >= 15


class TestMembershipModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            MembershipModel(recall_rate=1.5)

    def test_deterministic(self):
        model = MembershipModel()
        assert model.keeps("p", "c", True) == model.keeps("p", "c", True)

    def test_extreme_rates(self):
        perfect = MembershipModel(recall_rate=1.0,
                                  false_positive_rate=0.0)
        assert perfect.keeps("p", "c", True)
        assert not perfect.keeps("p", "c", False)

    def test_filter_products(self):
        perfect = MembershipModel(recall_rate=1.0,
                                  false_positive_rate=0.0)
        kept = perfect.filter_products("c", ["a", "b"], ["x", "y"])
        assert kept == {"a", "b"}

    def test_calibrated_rates_are_rough_long_run_frequencies(self):
        model = MembershipModel()
        kept = sum(model.keeps(f"product-{i}", "c", True)
                   for i in range(2000))
        assert abs(kept / 2000 - model.recall_rate) < 0.03


class TestCaseStudy:
    def test_spec_saving_matches_paper_59_percent(self):
        assert spec_maintenance_saving("amazon", 3) \
            == pytest.approx(25777 / 43814)

    def test_small_run_shape(self):
        result = run_case_study(CaseStudyConfig(sample_size=60),
                                keep_per_concept=True)
        assert result.concepts_evaluated == 60
        assert len(result.per_concept) == 60
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert result.f1 > 0.0

    def test_full_run_matches_paper_precision_recall(self):
        result = run_case_study()
        assert result.precision == pytest.approx(0.713, abs=0.04)
        assert result.recall == pytest.approx(0.792, abs=0.04)
        assert result.maintenance_saving == pytest.approx(0.588,
                                                          abs=0.005)

    def test_case_study_deterministic(self):
        config = CaseStudyConfig(sample_size=40)
        assert run_case_study(config) == run_case_study(config)

    def test_perfect_membership_gives_perfect_scores(self):
        config = CaseStudyConfig(
            sample_size=20,
            membership=MembershipModel(recall_rate=1.0,
                                       false_positive_rate=0.0))
        result = run_case_study(config)
        assert result.precision == 1.0
        assert result.recall == 1.0
