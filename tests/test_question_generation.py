"""Tests for question generation, pools and Table 4 statistics."""

from __future__ import annotations

import pytest

from repro.errors import QuestionGenerationError
from repro.questions.generation import generate_level_questions
from repro.questions.model import (DatasetKind, QuestionKind,
                                   QuestionType)
from repro.questions.pools import build_pools, default_pools


class TestLevelGeneration:
    def test_sample_size_respected(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 1,
                                             sample_size=10)
        assert len(generated.positives) == 10

    def test_positive_questions_ask_the_true_parent(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=25)
        for question in generated.positives:
            assert question.asked_parent_name \
                == question.true_parent_name
            assert question.kind is QuestionKind.POSITIVE

    def test_easy_negatives_are_same_level_non_parents(
            self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=25)
        parent_level_names = {
            node.name for node in ebay_taxonomy.nodes_at_level(1)}
        for question in generated.negatives_easy:
            assert question.asked_parent_name in parent_level_names
            assert question.asked_parent_name \
                != question.true_parent_name

    def test_hard_negatives_are_uncles(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=25)
        for question in generated.negatives_hard:
            uncles = {node.name for node in
                      ebay_taxonomy.uncles(question.child_id)}
            assert question.asked_parent_name in uncles

    def test_mcq_contains_truth_exactly_once(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=25)
        for question in generated.mcqs:
            assert question.options.count(
                question.true_parent_name) == 1
            assert question.options[question.answer_index] \
                == question.true_parent_name

    def test_mcq_options_are_distinct(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=25)
        for question in generated.mcqs:
            assert len(set(question.options)) == 4

    def test_level_zero_rejected(self, ebay_taxonomy):
        with pytest.raises(QuestionGenerationError):
            generate_level_questions("ebay", ebay_taxonomy, 0)

    def test_absent_level_rejected(self, ebay_taxonomy):
        with pytest.raises(QuestionGenerationError):
            generate_level_questions("ebay", ebay_taxonomy, 9)

    def test_generation_is_deterministic(self, ebay_taxonomy):
        first = generate_level_questions("ebay", ebay_taxonomy, 1,
                                         sample_size=15)
        second = generate_level_questions("ebay", ebay_taxonomy, 1,
                                          sample_size=15)
        assert [q.uid for q in first.positives] \
            == [q.uid for q in second.positives]
        assert [q.uid for q in first.mcqs] \
            == [q.uid for q in second.mcqs]

    def test_seed_decorrelates(self, ebay_taxonomy):
        first = generate_level_questions("ebay", ebay_taxonomy, 2,
                                         sample_size=15, seed="a")
        second = generate_level_questions("ebay", ebay_taxonomy, 2,
                                          sample_size=15, seed="b")
        assert {q.child_id for q in first.positives} \
            != {q.child_id for q in second.positives}

    def test_easy_set_is_balanced(self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=20)
        yes = sum(1 for q in generated.easy
                  if q.kind is QuestionKind.POSITIVE)
        assert yes == len(generated.easy) - yes

    def test_hard_set_pairs_positives_with_hard_children(
            self, ebay_taxonomy):
        generated = generate_level_questions("ebay", ebay_taxonomy, 2,
                                             sample_size=20)
        hard = generated.hard
        positives = {q.child_id for q in hard
                     if q.kind is QuestionKind.POSITIVE}
        negatives = {q.child_id for q in hard
                     if q.kind is QuestionKind.NEGATIVE_HARD}
        assert positives == negatives


class TestPools:
    def test_question_levels_cover_all_but_root(self, ebay_pools):
        assert ebay_pools.question_levels == [1, 2]

    def test_total_pool_concatenates_levels(self, ebay_pools):
        total = ebay_pools.total_pool(DatasetKind.MCQ)
        per_level = sum(
            len(ebay_pools.level_pool(level, DatasetKind.MCQ))
            for level in ebay_pools.question_levels)
        assert len(total) == per_level
        assert total.level is None

    def test_pool_label(self, ebay_pools):
        pool = ebay_pools.level_pool(1, DatasetKind.HARD)
        assert pool.label == "ebay/hard/level 1-root"

    def test_statistics_shape(self, ebay_pools):
        rows = ebay_pools.statistics()
        assert rows[-1]["level"] == "total"
        assert rows[-1]["easy"] == sum(r["easy"] for r in rows[:-1])

    def test_easy_twice_mcq(self, ebay_pools):
        for row in ebay_pools.statistics()[:-1]:
            assert row["easy"] == 2 * row["mcq"]

    def test_mcq_pool_is_mcq_only(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.MCQ)
        assert all(q.qtype is QuestionType.MCQ for q in pool.questions)

    def test_default_pools_cached(self):
        assert default_pools("ebay", sample_size=10) \
            is default_pools("ebay", sample_size=10)

    def test_paper_scale_counts_match_table4_easy_column(self):
        # Glottolog's easy counts are reproduced exactly (Table 4).
        pools = build_pools("glottolog")
        easy = [row["easy"] for row in pools.statistics()[:-1]]
        assert easy == [500, 564, 584, 600, 732]

    def test_paper_scale_mcq_counts_match_table4(self):
        pools = build_pools("google")
        mcq = [row["mcq"] for row in pools.statistics()[:-1]]
        assert mcq == [129, 300, 328, 318]
