"""Tests for sample-size math and bootstrap intervals."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.bootstrap import bootstrap_mean
from repro.stats.sampling import cochran_sample_size


class TestCochran:
    # The paper's Table 4 MCQ column equals the per-level sample size;
    # these population -> size pairs are read straight off the table.
    @pytest.mark.parametrize("population,expected", [
        (712, 250),    # Glottolog level 1
        (507, 219),    # Amazon level 1
        (3910, 350),   # Amazon level 2
        (192, 129),    # Google level 1
        (17, 17),      # Schema level 1 (full population)
        # ACM level 1 (N=84): the paper reports 69; the formula gives
        # 69.08 which ceils to 70 — the paper's own rounding is
        # inconsistent here (192 -> 129 requires ceiling).
        (84, 70),
        (680, 246),    # GeoNames level 1
        (155, 111),    # ICD level 1
        (1854, 319),   # OAE level 1
        (309, 172),    # NCBI level 1
    ])
    def test_matches_table4_sizes(self, population, expected):
        assert cochran_sample_size(population) == expected

    def test_zero_population(self):
        assert cochran_sample_size(0) == 0

    def test_single_entity(self):
        assert cochran_sample_size(1) == 1

    def test_never_exceeds_population(self):
        for population in (1, 5, 50, 500, 5000):
            assert cochran_sample_size(population) <= population

    def test_monotone_in_population(self):
        sizes = [cochran_sample_size(n) for n in (10, 100, 1000, 10000)]
        assert sizes == sorted(sizes)

    def test_caps_near_385_for_huge_populations(self):
        # The infinite-population 95%/5% size is 385.
        assert cochran_sample_size(10_000_000) == 385

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            cochran_sample_size(-1)

    def test_bad_margin_rejected(self):
        with pytest.raises(ValueError):
            cochran_sample_size(100, margin=0.0)

    def test_bad_proportion_rejected(self):
        with pytest.raises(ValueError):
            cochran_sample_size(100, proportion=1.5)

    def test_wider_margin_needs_fewer_samples(self):
        assert cochran_sample_size(1000, margin=0.1) \
            < cochran_sample_size(1000, margin=0.05)


class TestBootstrap:
    def test_point_is_sample_mean(self):
        interval = bootstrap_mean([1.0, 2.0, 3.0])
        assert interval.point == pytest.approx(2.0)

    def test_interval_contains_point(self):
        interval = bootstrap_mean([0.2, 0.4, 0.9, 0.5, 0.1])
        assert interval.low <= interval.point <= interval.high

    def test_single_value_degenerate(self):
        interval = bootstrap_mean([0.7])
        assert interval.low == interval.high == 0.7

    def test_deterministic_given_seed(self):
        values = [0.1, 0.9, 0.4, 0.6]
        assert bootstrap_mean(values, seed=3) \
            == bootstrap_mean(values, seed=3)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_mean([1.0, 2.0], confidence=1.0)

    def test_contains_and_width(self):
        interval = bootstrap_mean([0.0, 1.0] * 20, seed=1)
        assert interval.contains(0.5)
        assert interval.width > 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=2, max_size=30))
    def test_interval_brackets_the_mean_for_any_sample(self, values):
        interval = bootstrap_mean(values, seed=0)
        assert interval.low <= interval.point + 1e-9
        assert interval.high >= interval.point - 1e-9
