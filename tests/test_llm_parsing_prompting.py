"""Tests for answer parsing, prompt building and prompt inversion."""

from __future__ import annotations

import pytest

from repro.errors import PromptError
from repro.llm.base import StaticResponder
from repro.llm.prompt_parsing import parse_prompt
from repro.llm.prompting import (COT_SUFFIX, FEW_SHOT_COUNT,
                                 PromptSetting, build_prompt,
                                 few_shot_exemplars)
from repro.llm.parsing import parse_mcq, parse_true_false
from repro.questions.model import (Answer, DatasetKind, QuestionKind,
                                   QuestionType)
from repro.questions.templates import render_question
from repro.taxonomy.node import Domain


class TestTrueFalseParsing:
    @pytest.mark.parametrize("text,expected", [
        ("Yes.", Answer.YES),
        ("yes", Answer.YES),
        ("No.", Answer.NO),
        ("  No, that is wrong.", Answer.NO),
        ("Yes, Hailu is a type of Hakka-Chinese.", Answer.YES),
        ("I don't know.", Answer.IDK),
        ("I do not know the answer.", Answer.IDK),
        ("I'm not sure, I don't know.", Answer.IDK),
        ("Unable to determine from the given information.", Answer.IDK),
        ("", Answer.UNPARSEABLE),
        ("Maybe, it depends.", Answer.UNPARSEABLE),
    ])
    def test_basic_cases(self, text, expected):
        assert parse_true_false(text) is expected

    def test_conclusion_beats_reasoning_mentions(self):
        text = ("Let's think step by step. One might say yes at first, "
                "but the correct answer is No.")
        assert parse_true_false(text) is Answer.NO

    def test_answer_colon_form(self):
        assert parse_true_false("Answer: yes") is Answer.YES

    def test_yes_embedded_in_sentence(self):
        assert parse_true_false("The answer would be yes here.") \
            is Answer.YES


class TestMcqParsing:
    def test_bare_letter(self):
        assert parse_mcq("B") is Answer.B

    def test_letter_with_parenthesis(self):
        assert parse_mcq("C) Stationery") is Answer.C

    def test_sentence_with_letter(self):
        assert parse_mcq("The best option is D) Gadgets.") is Answer.D

    def test_answer_is_letter(self):
        assert parse_mcq("The answer is A") is Answer.A

    def test_option_text_fallback(self):
        options = ("Pens", "Stationery", "Desks", "Lamps")
        assert parse_mcq("It should be Stationery.", options) \
            is Answer.B

    def test_idk(self):
        assert parse_mcq("I don't know.") is Answer.IDK

    def test_unparseable(self):
        assert parse_mcq("Hmm.") is Answer.UNPARSEABLE

    def test_empty(self):
        assert parse_mcq("  ") is Answer.UNPARSEABLE


def _pool(ebay_pools):
    return ebay_pools.total_pool(DatasetKind.HARD).questions


class TestPromptBuilding:
    def test_zero_shot_is_bare_template(self, ebay_pools):
        question = _pool(ebay_pools)[0]
        assert build_prompt(question, PromptSetting.ZERO_SHOT) \
            == render_question(question)

    def test_cot_appends_suffix(self, ebay_pools):
        question = _pool(ebay_pools)[0]
        prompt = build_prompt(question, PromptSetting.COT)
        assert prompt.endswith(COT_SUFFIX)

    def test_few_shot_has_five_examples(self, ebay_pools):
        questions = _pool(ebay_pools)
        prompt = build_prompt(questions[0], PromptSetting.FEW_SHOT,
                              pool_questions=questions)
        assert prompt.count("Example:") == FEW_SHOT_COUNT
        assert prompt.rstrip().endswith(
            "answer with (Yes/No/I don't know)")

    def test_few_shot_examples_balanced(self, ebay_pools):
        questions = _pool(ebay_pools)
        exemplars = few_shot_exemplars(questions, questions[0])
        yes = sum(1 for e in exemplars
                  if e.kind is QuestionKind.POSITIVE)
        assert 2 <= yes <= 3

    def test_few_shot_excludes_target_child(self, ebay_pools):
        questions = _pool(ebay_pools)
        target = questions[0]
        exemplars = few_shot_exemplars(questions, target)
        assert all(e.child_id != target.child_id for e in exemplars)

    def test_few_shot_deterministic(self, ebay_pools):
        questions = _pool(ebay_pools)
        first = few_shot_exemplars(questions, questions[3])
        second = few_shot_exemplars(questions, questions[3])
        assert [e.uid for e in first] == [e.uid for e in second]


class TestPromptInversion:
    def test_tf_round_trip(self, ebay_pools):
        for question in _pool(ebay_pools)[:30]:
            parsed = parse_prompt(render_question(question))
            assert parsed.qtype is QuestionType.TRUE_FALSE
            assert parsed.child_name == question.child_name
            assert parsed.asked_name == question.asked_parent_name
            assert parsed.domain_hint is Domain.SHOPPING

    def test_mcq_round_trip(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.MCQ).questions
        for question in pool[:30]:
            parsed = parse_prompt(render_question(question))
            assert parsed.qtype is QuestionType.MCQ
            assert parsed.child_name == question.child_name
            assert parsed.options == question.options

    def test_variant_round_trip(self, ebay_pools):
        question = _pool(ebay_pools)[0]
        parsed = parse_prompt(render_question(question, variant=2))
        assert parsed.variant == 2
        assert parsed.child_name == question.child_name

    def test_cot_flag_detected(self, ebay_pools):
        question = _pool(ebay_pools)[0]
        parsed = parse_prompt(build_prompt(question, PromptSetting.COT))
        assert parsed.cot
        assert parsed.child_name == question.child_name

    def test_shots_counted(self, ebay_pools):
        questions = _pool(ebay_pools)
        prompt = build_prompt(questions[0], PromptSetting.FEW_SHOT,
                              pool_questions=questions)
        parsed = parse_prompt(prompt)
        assert parsed.shots == FEW_SHOT_COUNT
        assert parsed.child_name == questions[0].child_name

    def test_health_template_has_no_domain_hint(self):
        prompt = ("Is Acute hepatitis a type of Hepatitis? answer "
                  "with (Yes/No/I don't know)")
        parsed = parse_prompt(prompt)
        assert parsed.domain_hint is None

    def test_empty_prompt_rejected(self):
        with pytest.raises(PromptError):
            parse_prompt("   ")

    def test_non_template_prompt_rejected(self):
        with pytest.raises(PromptError):
            parse_prompt("Tell me a joke about taxonomies.")


class TestStaticResponder:
    def test_static_responder_is_chat_model(self):
        from repro.llm.base import ChatModel
        model = StaticResponder("echo", "Yes.")
        assert isinstance(model, ChatModel)
        assert model.generate("anything") == "Yes."
