"""Tests for the execution engine (scheduler, middleware, cache)."""

from __future__ import annotations

import threading

import pytest

from repro.core.runner import EvaluationRunner
from repro.engine.cache import CachedModel, ResponseCache
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.middleware import (FaultInjectingModel,
                                     RateLimitedModel, RetryingModel,
                                     TimeoutModel, TokenBucket,
                                     backoff_delay)
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry
from repro.errors import (ModelError, ModelTimeoutError,
                          ModelTransientError)
from repro.llm.base import BaseChatModel
from repro.obs.cost import CostMeter
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools

#: Zero-sleep policy for tests (no real backoff waiting).
FAST_RETRY = RetryPolicy(retries=3, base_delay=0.0, jitter=0.0)


class EchoModel(BaseChatModel):
    """Deterministic test backend: echoes a tag of the prompt."""

    def __init__(self, name: str = "echo"):
        super().__init__(name)

    def _respond(self, prompt: str) -> str:
        return f"echo:{len(prompt)}"


class FlakyModel:
    """Always raises a transient error (exhaustion tests)."""

    name = "flaky"

    def __init__(self):
        self.attempts = 0

    def generate(self, prompt: str) -> str:
        self.attempts += 1
        raise ModelTransientError("synthetic outage")


class FakeClock:
    """Manually advanced monotonic clock for time-based middleware."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def pool():
    return build_pools("ebay", sample_size=15).total_pool(
        DatasetKind.HARD)


# ----------------------------------------------------------------------
# Parity: engine output is bit-identical to the sequential runner
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_engine_matches_sequential(self, pool, workers):
        model = get_model("GPT-4")
        sequential = EvaluationRunner(keep_records=True).evaluate(
            model, pool)
        engine = EvaluationEngine(EngineConfig(max_workers=workers))
        parallel = EvaluationRunner(
            keep_records=True, engine=engine).evaluate(model, pool)
        assert parallel.metrics == sequential.metrics
        assert parallel.records == sequential.records

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_parity_under_injected_faults(self, pool, workers, seed):
        """Eventually-successful transient faults never change metrics."""
        model = get_model("Llama-2-7B")
        sequential = EvaluationRunner(keep_records=True).evaluate(
            model, pool)
        flaky = FaultInjectingModel(model, seed=seed,
                                    failure_rate=0.7,
                                    max_consecutive=2)
        engine = EvaluationEngine(
            EngineConfig(max_workers=workers, retry=FAST_RETRY))
        parallel = EvaluationRunner(
            keep_records=True, engine=engine).evaluate(flaky, pool)
        assert parallel.metrics == sequential.metrics
        assert parallel.records == sequential.records
        assert flaky.faults_injected > 0
        assert engine.stats().faults == flaky.faults_injected

    def test_matrix_parity(self, pool):
        models = [get_model("GPT-4"), get_model("Flan-T5-3B")]
        pools = {"ebay": pool}
        sequential = EvaluationRunner().evaluate_matrix(models, pools)
        engine = EvaluationEngine(EngineConfig(max_workers=4))
        parallel = EvaluationRunner(engine=engine).evaluate_matrix(
            models, pools)
        assert parallel == sequential

    def test_worker_exceptions_propagate(self):
        class Exploding:
            name = "boom"

            def generate(self, prompt: str) -> str:
                raise ValueError("not transient")

        engine = EvaluationEngine(EngineConfig(max_workers=4))
        with pytest.raises(ValueError, match="not transient"):
            engine.run(Exploding(), list(range(32)),
                       lambda model, item: model.generate("x"))

    def test_poisoned_first_item_aborts_promptly(self):
        """A failure at index 0 must not strand queued-but-unstarted
        work: the pool shuts down with its queue cancelled, so only
        the already-running in-flight window can still execute."""
        executed: list[int] = []
        lock = threading.Lock()

        def fn(_model, item: int) -> int:
            with lock:
                executed.append(item)
            if item == 0:
                raise ValueError("poisoned")
            import time
            time.sleep(0.05)        # others are slow, not failing
            return item

        engine = EvaluationEngine(
            EngineConfig(max_workers=8, retry=None, cache=False))
        import time
        started = time.perf_counter()
        with pytest.raises(ValueError, match="poisoned"):
            engine.run(EchoModel(), list(range(64)), fn)
        elapsed = time.perf_counter() - started
        # Sequential drain of 64 slow items would take >= 3 seconds;
        # a prompt abort only waits out the in-flight window.
        assert elapsed < 1.5
        assert len(executed) < 64


# ----------------------------------------------------------------------
# Middleware units
# ----------------------------------------------------------------------
class TestBackoff:
    def test_schedule_grows_exponentially_and_caps(self):
        policy = RetryPolicy(retries=5, base_delay=0.1, max_delay=0.5,
                             jitter=0.0)
        delays = [backoff_delay(policy, attempt)
                  for attempt in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        first = backoff_delay(policy, 2, "some prompt")
        assert first == backoff_delay(policy, 2, "some prompt")
        step = 0.1 * 4
        assert step <= first < step * 1.5
        assert first != backoff_delay(policy, 2, "another prompt")

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), -1)

    def test_retry_sleeps_the_schedule(self):
        sleeps: list[float] = []
        model = RetryingModel(FlakyModel(),
                              RetryPolicy(retries=3, base_delay=0.1,
                                          max_delay=1.0, jitter=0.0),
                              sleeper=sleeps.append)
        with pytest.raises(ModelError):
            model.generate("prompt")
        assert sleeps == [0.1, 0.2, 0.4]


class TestRetrying:
    def test_exhaustion_raises_hard_model_error(self):
        flaky = FlakyModel()
        model = RetryingModel(flaky, FAST_RETRY)
        with pytest.raises(ModelError) as excinfo:
            model.generate("prompt")
        assert not isinstance(excinfo.value, ModelTransientError)
        assert flaky.attempts == FAST_RETRY.retries + 1
        assert isinstance(excinfo.value.__cause__,
                          ModelTransientError)

    def test_recovers_after_transient_faults(self):
        inner = FaultInjectingModel(EchoModel(), seed=1,
                                    failure_rate=1.0,
                                    max_consecutive=2)
        telemetry = Telemetry()
        model = RetryingModel(inner, FAST_RETRY, telemetry=telemetry)
        assert model.generate("hello").startswith("echo:")
        stats = telemetry.snapshot()
        assert stats.faults == 2
        assert stats.retries == 2


class TestTimeout:
    def test_slow_call_raises_timeout(self):
        clock = FakeClock()

        class Slow:
            name = "slow"

            def generate(self, prompt: str) -> str:
                clock.sleep(2.0)
                return "late"

        model = TimeoutModel(Slow(), timeout=1.0, clock=clock)
        with pytest.raises(ModelTimeoutError) as excinfo:
            model.generate("prompt")
        assert excinfo.value.elapsed == pytest.approx(2.0)
        assert excinfo.value.timeout == 1.0
        assert isinstance(excinfo.value, ModelTransientError)

    def test_fast_call_passes_through(self):
        model = TimeoutModel(EchoModel(), timeout=10.0,
                             clock=FakeClock())
        assert model.generate("hi") == "echo:2"


class TestTokenBucket:
    def test_burst_then_metered(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=4, clock=clock,
                             sleeper=clock.sleep)
        for _ in range(4):
            assert bucket.acquire() == 0.0
        assert bucket.tokens == pytest.approx(0.0)
        # Fifth call must wait for one token: (1 - 0) / 2 = 0.5s.
        assert bucket.acquire() == pytest.approx(0.5)
        assert clock.now == pytest.approx(0.5)

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=3, clock=clock,
                             sleeper=clock.sleep)
        for _ in range(3):
            bucket.acquire()
        clock.sleep(100.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_rate_limited_model_consumes_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2, clock=clock,
                             sleeper=clock.sleep)
        model = RateLimitedModel(EchoModel(), bucket)
        for _ in range(3):
            model.generate("prompt")
        # Two burst tokens were free; the third call waited 1/rate.
        assert clock.now == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestResponseCache:
    def test_hit_miss_counters(self):
        cache = ResponseCache()
        assert cache.get("m", "p") is None
        cache.put("m", "p", "r")
        assert cache.get("m", "p") == "r"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_keying_includes_model_name(self):
        cache = ResponseCache()
        cache.put("m1", "p", "r1")
        cache.put("m2", "p", "r2")
        assert cache.get("m1", "p") == "r1"
        assert cache.get("m2", "p") == "r2"

    def test_lru_eviction(self):
        cache = ResponseCache(capacity=2)
        cache.put("m", "a", "1")
        cache.put("m", "b", "2")
        assert cache.get("m", "a") == "1"  # refresh "a"
        cache.put("m", "c", "3")           # evicts "b"
        assert cache.get("m", "b") is None
        assert cache.get("m", "a") == "1"
        assert cache.evictions == 1

    def test_persistence_round_trip(self, tmp_path):
        cache = ResponseCache()
        cache.put("GPT-4", "Is a poodle a dog?", "Yes.")
        cache.put("GPT-4", "Is a dog a poodle?", "No.")
        path = tmp_path / "cache.json"
        cache.save(path)
        loaded = ResponseCache.load(path)
        assert len(loaded) == 2
        assert loaded.to_dict() == cache.to_dict()
        assert loaded.get("GPT-4", "Is a poodle a dog?") == "Yes."

    def test_malformed_payload_raises_model_error(self):
        with pytest.raises(ModelError):
            ResponseCache.from_dict({"nope": []})
        with pytest.raises(ModelError):
            ResponseCache.from_dict({"entries": [{"model": "m"}]})

    def test_cached_model_serves_warm_prompts(self):
        inner = EchoModel()
        model = CachedModel(inner, ResponseCache())
        assert model.generate("abc") == model.generate("abc")
        assert inner.prompts_served == 1

    def test_warm_engine_rerun_issues_zero_calls(self, pool):
        model = get_model("GPT-4")
        engine = EvaluationEngine(EngineConfig(max_workers=2))
        runner = EvaluationRunner(engine=engine)
        runner.evaluate(model, pool)
        cold_calls = engine.stats().calls
        runner.evaluate(model, pool)
        assert engine.stats().calls == cold_calls
        assert engine.stats().cache_hits == len(pool)


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_stats_properties(self):
        stats = EngineStats(records=10, calls=8, retries=2, faults=2,
                            timeouts=1, cache_hits=2, cache_misses=8,
                            wall_time_s=2.0, busy_time_s=4.0,
                            workers=4)
        assert stats.mean_latency_s == pytest.approx(0.4)
        assert stats.utilization == pytest.approx(0.5)
        assert stats.cache_hit_rate == pytest.approx(0.2)
        assert stats.throughput == pytest.approx(5.0)
        row = stats.as_row()
        assert row["records"] == 10
        assert row["utilization"] == "0.500"

    def test_empty_stats_do_not_divide_by_zero(self):
        stats = Telemetry().snapshot()
        assert stats.mean_latency_s == 0.0
        assert stats.utilization == 0.0
        assert stats.cache_hit_rate == 0.0
        assert stats.throughput == 0.0

    def test_reset_zeroes_counters(self):
        telemetry = Telemetry()
        telemetry.record_call()
        telemetry.record_work(1.0)
        telemetry.reset()
        assert telemetry.snapshot().calls == 0
        assert telemetry.snapshot().records == 0


# ----------------------------------------------------------------------
# Thread safety of the base-model counter
# ----------------------------------------------------------------------
class TestCounterThreadSafety:
    def test_prompts_served_exact_under_contention(self):
        model = EchoModel()
        per_thread = 200

        def hammer() -> None:
            for _ in range(per_thread):
                model.generate("prompt")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert model.prompts_served == 8 * per_thread


# ----------------------------------------------------------------------
# Scalability experiment integration
# ----------------------------------------------------------------------
class TestHarnessThroughput:
    def test_rows_report_engine_telemetry(self):
        from repro.experiments.scalability import \
            harness_throughput_rows

        rows = harness_throughput_rows(worker_counts=(1, 2),
                                       sample_size=10)
        assert len(rows) == 2
        assert all(row["records"] == row["n"] for row in rows)
        assert [row["workers"] for row in rows] == [1, 2]
        assert all("utilization" in row for row in rows)


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------
class TestConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(max_workers=0)
        with pytest.raises(ValueError):
            EngineConfig(timeout=0.0)
        with pytest.raises(ValueError):
            EngineConfig(rate=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_in_flight_window_defaults_to_twice_workers(self):
        assert EngineConfig(max_workers=4).in_flight_window == 8
        assert EngineConfig(max_workers=4,
                            max_in_flight=32).in_flight_window == 32
        # Never narrower than the worker pool itself.
        assert EngineConfig(max_workers=8,
                            max_in_flight=2).in_flight_window == 8

    def test_full_stack_composes(self):
        engine = EvaluationEngine(
            EngineConfig(max_workers=2, timeout=30.0, rate=1000.0,
                         retry=FAST_RETRY))
        wrapped = engine.wrap(EchoModel())
        # Documented order:
        # cache(retry(cost(rate(timeout(count(model)))))).
        assert isinstance(wrapped, CachedModel)
        assert isinstance(wrapped.inner, RetryingModel)
        assert isinstance(wrapped.inner.inner, CostMeter)
        assert isinstance(wrapped.inner.inner.inner, RateLimitedModel)
        assert isinstance(wrapped.inner.inner.inner.inner,
                          TimeoutModel)
        assert wrapped.generate("hi") == "echo:2"
