"""Tests for the experiment runners (fast configurations)."""

from __future__ import annotations

import pytest

from repro.experiments.analysis import (domain_gaps, size_scaling_steps,
                                        tuning_effect)
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import table4_rows
from repro.experiments.instances import run_instance_typing
from repro.experiments.levels import FIGURE3_KEYS, run_levels
from repro.experiments.overall import run_overall
from repro.experiments.popularity import (common_beat_specialized,
                                          figure2_rows)
from repro.experiments.prompting import run_prompting
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.scalability import (efficiency_summary,
                                           figure7_rows,
                                           well_scaling_series)
from repro.experiments.statistics import table1_rows
from repro.llm.prompting import PromptSetting
from repro.llm.registry import SERIES
from repro.questions.model import DatasetKind


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig.fast()


@pytest.fixture(scope="module")
def fast_overall(fast_config):
    return run_overall(DatasetKind.HARD, fast_config)


class TestTable1:
    def test_ten_rows(self):
        rows = table1_rows()
        assert len(rows) == 10

    def test_paper_entities_exact(self):
        rows = {row["taxonomy"]: row for row in table1_rows()}
        assert rows["NCBI"]["entities (paper)"] == 2190125
        assert rows["eBay"]["entities (paper)"] == 595

    def test_built_matches_paper_when_under_cap(self):
        rows = {row["taxonomy"]: row for row in table1_rows()}
        for name in ("eBay", "Google", "Schema", "ACM-CCS", "GeoNames",
                     "Glottolog", "ICD-10-CM", "OAE"):
            assert rows[name]["entities (built)"] \
                == rows[name]["entities (paper)"]


class TestTable4:
    def test_rows_cover_requested_taxonomies(self, fast_config):
        rows = table4_rows(fast_config)
        assert {row["taxonomy"] for row in rows} \
            == set(fast_config.taxonomy_keys)

    def test_total_rows_present(self, fast_config):
        rows = table4_rows(fast_config)
        totals = [row for row in rows if row["level"] == "total"]
        assert len(totals) == len(fast_config.taxonomy_keys)


class TestOverall:
    def test_cells_cover_matrix(self, fast_config, fast_overall):
        assert len(fast_overall.cells) \
            == len(fast_config.models) * len(fast_config.taxonomy_keys)

    def test_deltas_are_small_even_at_fast_scale(self, fast_overall):
        assert fast_overall.mean_abs_accuracy_delta < 0.12
        assert fast_overall.mean_abs_miss_delta < 0.10

    def test_worst_cells_sorted(self, fast_overall):
        worst = fast_overall.worst_cells(3)
        deltas = [abs(cell.accuracy_delta) for cell in worst]
        assert deltas == sorted(deltas, reverse=True)

    def test_matrix_view(self, fast_overall):
        matrix = fast_overall.matrix()
        assert ("GPT-4", "ebay") in matrix


class TestLevels:
    def test_series_shape(self, fast_config):
        series = run_levels(fast_config)
        expected_keys = [key for key in fast_config.taxonomy_keys
                         if key in FIGURE3_KEYS]
        assert len(series) \
            == len(expected_keys) * len(fast_config.models)
        for entry in series:
            assert len(entry.levels) == len(entry.accuracies)

    def test_geonames_excluded(self):
        assert "geonames" not in FIGURE3_KEYS


class TestPrompting:
    def test_radar_points_cover_settings(self, fast_config):
        result = run_prompting(fast_config, models=("GPT-4",))
        settings = {point.setting for point in result.points}
        assert settings == {"zero-shot", "few-shot", "cot"}

    def test_average_helper(self, fast_config):
        result = run_prompting(fast_config, models=("GPT-4",))
        value = result.average("GPT-4", PromptSetting.ZERO_SHOT)
        assert 0.0 <= value <= 1.0


class TestInstanceTyping:
    def test_series_only_for_supported_taxonomies(self):
        config = ExperimentConfig.fast(
            models=("GPT-4",),
            taxonomy_keys=("ebay", "glottolog"))
        series = run_instance_typing(config)
        assert {entry.taxonomy_key for entry in series} \
            == {"glottolog"}


class TestScalabilityAndPopularity:
    def test_figure7_rows(self):
        rows = figure7_rows()
        assert len(rows) == 14
        assert all(row["gpu_ram_gb"] > 0 for row in rows)

    def test_efficiency_summary_keys(self):
        assert set(efficiency_summary()) == set(
            s for s in SERIES if s not in ("GPTs",))

    def test_well_scaling_series(self):
        good = well_scaling_series()
        assert "Flan-T5s" in good

    def test_figure2_rows_sorted_descending(self):
        rows = figure2_rows(sample=50)
        hits = [row["mean_hits"] for row in rows]
        assert hits == sorted(hits, reverse=True)

    def test_common_beats_specialized(self):
        assert common_beat_specialized()


class TestAnalysis:
    def test_domain_gaps_positive_for_strong_models(self, fast_overall):
        gaps = {gap.model: gap
                for gap in domain_gaps(fast_overall.matrix())}
        assert gaps["GPT-4"].gap > 0.0

    def test_size_scaling_steps(self):
        config = ExperimentConfig(
            sample_size=24,
            models=("Llama-2-7B", "Llama-2-13B", "Falcon-7B",
                    "Falcon-40B"),
            taxonomy_keys=("ebay", "glottolog"))
        matrix = run_overall(DatasetKind.HARD, config).matrix()
        steps = size_scaling_steps(matrix, SERIES)
        by_series = {step.series: step for step in steps}
        assert by_series["Llama-2s"].improves
        assert not by_series["Falcons"].improves

    def test_tuning_effect_llms4ol(self, fast_overall):
        effect = tuning_effect(fast_overall.matrix(), "LLMs4OL",
                               "Flan-T5-3B")
        assert effect.uplift > 0.0

    def test_missing_model_raises(self, fast_overall):
        with pytest.raises(ValueError):
            tuning_effect(fast_overall.matrix(), "GPT-5", "GPT-4")


class TestRegistry:
    def test_eleven_experiments(self):
        assert set(EXPERIMENTS) == {"T1", "F2", "T4", "T5", "T6", "T7",
                                    "F3", "F4", "F6", "F7", "CS"}

    def test_run_experiment_by_id(self):
        rows = run_experiment("T1")
        assert len(rows) == 10

    def test_specs_carry_descriptions(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert spec.paper_artifact
