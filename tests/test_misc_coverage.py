"""Coverage for small behaviours not exercised elsewhere."""

from __future__ import annotations

import pytest

from repro.core.benchmark import TaxoGlimpse
from repro.core.runner import EvaluationRunner
from repro.errors import (ReproError, UnknownModelError,
                          UnknownNodeError, ValidationError)
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.templates import TF_ANSWER_SUFFIX


class TestErrors:
    def test_unknown_node_message(self):
        error = UnknownNodeError("x42")
        assert "x42" in str(error)
        assert isinstance(error, ReproError)

    def test_validation_error_collects_problems(self):
        error = ValidationError(["a", "b"])
        assert error.problems == ["a", "b"]
        assert "a; b" in str(error)

    def test_unknown_model_lists_known(self):
        error = UnknownModelError("GPT-5", known=["GPT-4"])
        assert "GPT-4" in str(error)


class TestBaseChatModel:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            BaseChatModel("x")  # type: ignore[abstract]

    def test_subclass_counts_prompts(self):
        class Echo(BaseChatModel):
            def _respond(self, prompt: str) -> str:
                return prompt

        model = Echo("echo")
        model.generate("one")
        model.generate("two")
        assert model.prompts_served == 2

    def test_empty_name_rejected(self):
        class Echo(BaseChatModel):
            def _respond(self, prompt: str) -> str:
                return prompt

        with pytest.raises(ValueError):
            Echo("")


class TestTemplateConstants:
    def test_tf_suffix_matches_table2(self):
        assert TF_ANSWER_SUFFIX == "answer with (Yes/No/I don't know)"

    def test_dataset_kind_values(self):
        assert {kind.value for kind in DatasetKind} \
            == {"easy", "hard", "mcq"}


class TestRunnerVariants:
    def test_variant_changes_prompt_not_outcome_much(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        base = EvaluationRunner(variant=0).evaluate(
            get_model("Flan-T5-11B"), pool)
        other = EvaluationRunner(variant=2).evaluate(
            get_model("Flan-T5-11B"), pool)
        assert abs(base.metrics.accuracy - other.metrics.accuracy) \
            < 0.1

    def test_record_str(self, ebay_pools):
        pool = ebay_pools.level_pool(1, DatasetKind.MCQ)
        result = EvaluationRunner().evaluate(get_model("GPT-4"), pool)
        text = str(result)
        assert "GPT-4" in text
        assert "A=" in text


class TestFacadeEdges:
    def test_format_table_with_custom_model_names(self):
        from repro.core.metrics import Metrics
        bench = TaxoGlimpse(sample_size=10)
        matrix = {("my-custom-model", "ebay"): Metrics(0.5, 0.1, 10)}
        text = bench.format_table(matrix)
        assert "my-custom-model" in text

    def test_resolve_model_passthrough(self):
        model = get_model("GPT-4")
        assert TaxoGlimpse.resolve_model(model) is model

    def test_resolve_model_by_name(self):
        assert TaxoGlimpse.resolve_model("GPT-4").name == "GPT-4"
