"""Tests for the surface heuristic baseline and the cost model."""

from __future__ import annotations

import pytest

from repro.core.runner import EvaluationRunner
from repro.errors import ModelError
from repro.llm.costs import (cost_estimate, fp16_ram_gb,
                             scaling_efficiency, series_cost_table)
from repro.llm.knowledge import (SurfaceHeuristicBaseline,
                                 surface_similarity)
from repro.questions.model import DatasetKind
from repro.questions.pools import default_pools


class TestSurfaceSimilarity:
    def test_identical_names(self):
        assert surface_similarity("Verbascum", "Verbascum") == 1.0

    def test_containment_floor(self):
        assert surface_similarity("Verbascum chaixii", "Verbascum") \
            >= 0.5

    def test_disjoint_names(self):
        assert surface_similarity("Hailu", "Sino-Tibetan") == 0.0

    def test_partial_overlap(self):
        score = surface_similarity("severe cardiac pain AE",
                                   "cardiac pain AE")
        assert 0.5 <= score <= 1.0

    def test_empty_name(self):
        assert surface_similarity("", "x") == 0.0

    def test_symmetry(self):
        assert surface_similarity("a b", "b c") \
            == surface_similarity("b c", "a b")

    def test_hyphens_are_token_separators(self):
        assert surface_similarity("Hakka-Chinese", "Chinese") > 0.0


class TestSurfaceBaseline:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SurfaceHeuristicBaseline(threshold=0.0)

    def test_never_abstains(self):
        model = SurfaceHeuristicBaseline()
        pool = default_pools("ncbi", sample_size=20).total_pool(
            DatasetKind.HARD)
        result = EvaluationRunner().evaluate(model, pool)
        assert result.metrics.miss_rate == 0.0

    def test_strong_on_ncbi_species_level(self):
        # Species embed genus names: surface form alone nails level 6.
        model = SurfaceHeuristicBaseline()
        pools = default_pools("ncbi", sample_size=30)
        leaf = EvaluationRunner().evaluate(
            model, pools.level_pool(6, DatasetKind.HARD))
        mid = EvaluationRunner().evaluate(
            model, pools.level_pool(4, DatasetKind.HARD))
        assert leaf.metrics.accuracy > 0.9
        assert leaf.metrics.accuracy > mid.metrics.accuracy + 0.2

    def test_near_chance_on_glottolog_leaves(self):
        model = SurfaceHeuristicBaseline()
        pools = default_pools("glottolog", sample_size=30)
        result = EvaluationRunner().evaluate(
            model, pools.level_pool(5, DatasetKind.HARD))
        assert result.metrics.accuracy < 0.75

    def test_free_form_prompt_answers_no(self):
        assert SurfaceHeuristicBaseline().generate("Hello there") \
            == "No."


class TestCostModel:
    def test_fp16_ram_close_to_anchors(self):
        estimate = cost_estimate("Llama-2-7B")
        assert fp16_ram_gb(7.0) == pytest.approx(estimate.gpu_ram_gb,
                                                 rel=0.05)

    def test_fp16_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fp16_ram_gb(0.0)

    def test_api_models_not_profiled(self):
        with pytest.raises(ModelError):
            cost_estimate("GPT-4")

    def test_series_table_covers_six_series(self):
        table = series_cost_table()
        assert set(table) == {"Llama-2s", "Llama-3s", "Flan-T5s",
                              "Falcons", "Vicunas", "Mistrals"}

    def test_series_members_ascend_in_size(self):
        for estimates in series_cost_table().values():
            sizes = [e.params_b for e in estimates]
            assert sizes == sorted(sizes)

    def test_questions_per_hour(self):
        estimate = cost_estimate("Flan-T5-3B")
        assert estimate.questions_per_hour \
            == pytest.approx(3600 / estimate.seconds_per_question)

    def test_flan_t5_scales_better_than_falcon(self):
        assert scaling_efficiency("Flan-T5s") \
            < scaling_efficiency("Falcons")

    def test_good_scalers_match_paper_claim(self):
        # Paper: Flan-T5s, Vicunas and Llama-3s present relatively
        # good scalability.
        good = {series for series in series_cost_table()
                if scaling_efficiency(series) < 0.45}
        assert {"Flan-T5s", "Vicunas", "Llama-3s"} <= good
        assert "Falcons" not in good

    def test_single_member_series_rejected(self):
        with pytest.raises(ModelError):
            scaling_efficiency("LLMs4OL")
