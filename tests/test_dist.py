"""Tests for repro.dist: planning, sharded execution, merge, gc.

The heart of the suite is the determinism contract: a sharded run —
at any worker count, including one crashed and resumed mid-shard —
merges into a ledger whose record/cell event lines are byte-identical
to a single-process run of the same request.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine.cache import ResponseCache, merge_caches
from repro.errors import RunError
from repro.llm.registry import get_model
from repro.obs.export import read_spans_jsonl
from repro.runs import (RunRegistry, RunRequest, execute_run,
                        load_run)
from repro.runs.driver import CellKey
from repro.dist import (execute_run_sharded, gc_runs, load_shard_plan,
                        merge_run, merge_shard_caches, plan_shards,
                        render_shard_dashboard, resume_run_sharded,
                        run_shard, shard_statuses,
                        sharded_run_status)
from repro.cli import main

SMALL = dict(dataset="mcq", models=("GPT-4", "LLMs4OL"),
             taxonomy_keys=("ebay", "glottolog"),
             settings=("zero-shot",), sample_size=6, seed="dist")


@pytest.fixture()
def registry(tmp_path) -> RunRegistry:
    return RunRegistry(tmp_path / "runs")


def _events(registry: RunRegistry, run_id: str) -> list[str]:
    """The determinism-contract slice of a run's ledger lines."""
    lines = registry.ledger_path(run_id).read_text(
        encoding="utf-8").splitlines()
    return [line for line in lines
            if json.loads(line).get("event") in
            ("record", "cell-started", "cell-finished")]


class _BudgetedModel:
    """Wraps a model; raises once a shared call budget is spent."""

    def __init__(self, inner, counter, lock):
        self.inner = inner
        self.name = inner.name
        self._counter = counter
        self._lock = lock

    def generate(self, prompt: str) -> str:
        with self._lock:
            if self._counter["budget"] <= 0:
                raise RuntimeError("injected crash")
            self._counter["budget"] -= 1
        return self.inner.generate(prompt)


def budgeted_resolver(budget: int):
    counter = {"budget": budget}
    lock = threading.Lock()

    def resolve(name: str):
        return _BudgetedModel(get_model(name), counter, lock)

    return resolve


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestPlanner:
    def test_plan_is_disjoint_exact_cover(self):
        request = RunRequest(**SMALL)
        plan = plan_shards(request, 4)
        assert plan.num_shards == 4
        covered = {cell_id: set() for cell_id, _ in plan.cells}
        for task in plan.tasks():
            indices = set(task.indices)
            assert not covered[task.cell.cell_id] & indices
            covered[task.cell.cell_id] |= indices
        for cell_id, n in plan.cells:
            assert covered[cell_id] == set(range(n))

    def test_plan_is_balanced(self):
        plan = plan_shards(RunRequest(**SMALL), 4)
        sizes = [plan.shard_questions(i) for i in range(4)]
        assert sum(sizes) == plan.total_questions
        assert min(sizes) > 0

    def test_plan_is_pure_function_of_request(self):
        a = plan_shards(RunRequest(**SMALL), 3)
        b = plan_shards(RunRequest(**SMALL), 3)
        assert a.to_dict() == b.to_dict()

    def test_more_shards_than_questions(self):
        request = RunRequest(dataset="mcq", models=("GPT-4",),
                             taxonomy_keys=("ebay",),
                             settings=("zero-shot",), sample_size=2,
                             seed="tiny")
        plan = plan_shards(request, 64)
        assert plan.num_shards == 64
        covered = {cell_id: set() for cell_id, _ in plan.cells}
        for task in plan.tasks():
            covered[task.cell.cell_id] |= set(task.indices)
        for cell_id, n in plan.cells:
            assert covered[cell_id] == set(range(n))

    def test_round_trip_through_registry(self, registry):
        from repro.dist import save_shard_plan
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 3)
        save_shard_plan(registry, run_id, plan)
        assert registry.shard_count(run_id) == 3
        assert load_shard_plan(registry, run_id).to_dict() \
            == plan.to_dict()

    def test_load_without_plan_raises(self, registry):
        run_id = registry.create(RunRequest(**SMALL), cells=8)
        assert registry.shard_count(run_id) == 0
        with pytest.raises(RunError, match="no shard plan"):
            load_shard_plan(registry, run_id)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(RunError, match="shards must be >= 1"):
            plan_shards(RunRequest(**SMALL), 0)
        with pytest.raises(RunError, match="shards must be >= 1"):
            execute_run_sharded(RunRequest(**SMALL), 0)


# ----------------------------------------------------------------------
# Sharded execution == single-process execution
# ----------------------------------------------------------------------
class TestShardedDeterminism:
    def test_inline_shards_match_single_process(self, registry):
        request = RunRequest(**SMALL)
        single = execute_run(request, registry=registry)
        sharded = execute_run_sharded(request, shards=4,
                                      registry=registry, procs=0)
        assert sharded.run_id != single.run_id
        assert _events(registry, sharded.run_id) \
            == _events(registry, single.run_id)
        assert sharded.cells.keys() == single.cells.keys()
        for key, expected in single.cells.items():
            got = sharded.cells[key]
            assert got.metrics == expected.metrics
            assert got.records == expected.records
        assert sharded.evaluated == single.evaluated
        assert registry.summary(sharded.run_id).status == "finished"
        assert registry.summary(sharded.run_id).shards == 4

    def test_process_pool_shards_match_single_process(self, registry):
        request = RunRequest(**SMALL)
        single = execute_run(request, registry=registry)
        sharded = execute_run_sharded(request, shards=2,
                                      registry=registry, procs=2)
        assert _events(registry, sharded.run_id) \
            == _events(registry, single.run_id)
        assert sharded.evaluated == single.evaluated

    def test_merged_spans_have_single_root(self, registry):
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=3,
                                      registry=registry, procs=0)
        spans = read_spans_jsonl(registry.spans_path(sharded.run_id))
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "run"
        assert roots[0].attrs["merged"] is True
        assert roots[0].attrs["shards"] == 3
        assert sum(1 for span in spans if span.name == "shard") == 3

    def test_sharded_run_loads_back(self, registry):
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=2,
                                      registry=registry, procs=0)
        loaded = load_run(sharded.run_id, registry=registry)
        assert loaded.cells.keys() == sharded.cells.keys()
        for key, expected in sharded.cells.items():
            assert loaded.cells[key].metrics == expected.metrics

    def test_history_records_shard_fanout(self, registry):
        from repro.obs import read_history
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=2,
                                      registry=registry, procs=0)
        entries = [entry for entry in read_history(registry)
                   if entry.run_id == sharded.run_id]
        assert entries and entries[-1].shards == 2


# ----------------------------------------------------------------------
# Crash / resume
# ----------------------------------------------------------------------
class TestCrashResume:
    def test_killed_worker_resumes_bit_identical(self, registry):
        request = RunRequest(**SMALL)
        single = execute_run(request, registry=registry)
        with pytest.raises(RunError, match="shard") as excinfo:
            execute_run_sharded(request, shards=4, registry=registry,
                                procs=0,
                                resolve_model=budgeted_resolver(13))
        assert "resume" in str(excinfo.value)
        run_id = [rid for rid in registry.list_ids()
                  if rid != single.run_id][0]
        # the durable partial state refuses to merge...
        with pytest.raises(RunError, match="cannot be merged yet"):
            merge_run(run_id, registry=registry)
        # ...and resume completes it to the single-process bytes.
        resumed = resume_run_sharded(run_id, registry=registry,
                                     procs=0)
        assert _events(registry, run_id) \
            == _events(registry, single.run_id)
        assert resumed.evaluated + resumed.replayed \
            == sum(len(result.records)
                   for result in single.cells.values())
        assert resumed.evaluated > 0       # fresh work happened
        assert resumed.replayed > 0        # durable work was reused

    def test_resume_of_finished_run_is_pure_replay(self, registry):
        request = RunRequest(**SMALL)
        sharded = execute_run_sharded(request, shards=2,
                                      registry=registry, procs=0)
        before = _events(registry, sharded.run_id)
        again = resume_run_sharded(sharded.run_id, registry=registry,
                                   procs=0)
        assert again.evaluated == 0
        assert _events(registry, sharded.run_id) == before

    def test_merge_is_idempotent_and_forceable(self, registry):
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=2,
                                      registry=registry, procs=0)
        before = _events(registry, sharded.run_id)
        merged = merge_run(sharded.run_id, registry=registry)
        assert merged.evaluated == 0       # pure load, no re-merge
        forced = merge_run(sharded.run_id, registry=registry,
                           force=True)
        assert _events(registry, sharded.run_id) == before
        assert forced.cells.keys() == sharded.cells.keys()


# ----------------------------------------------------------------------
# Status aggregation
# ----------------------------------------------------------------------
class TestShardStatus:
    def test_pending_then_finished(self, registry):
        from repro.dist import save_shard_plan
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=4)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        statuses = shard_statuses(run_id, registry=registry)
        assert [s.status for s in statuses] == ["pending", "pending"]
        assert sharded_run_status(run_id, registry=registry) \
            == "crashed"
        run_shard(run_id, 0, registry=registry, plan=plan)
        statuses = shard_statuses(run_id, registry=registry)
        assert statuses[0].status == "finished"
        assert statuses[1].status == "pending"
        run_shard(run_id, 1, registry=registry, plan=plan)
        assert sharded_run_status(run_id, registry=registry) \
            == "unmerged"
        assert registry.summary(run_id).status == "unmerged"
        dashboard = render_shard_dashboard(
            run_id, shard_statuses(run_id, registry=registry))
        assert "repro runs merge" in dashboard
        merge_run(run_id, registry=registry)
        assert registry.summary(run_id).status == "finished"

    def test_questions_done_tracks_progress(self, registry):
        from repro.dist import save_shard_plan
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        run_shard(run_id, 0, registry=registry, plan=plan)
        statuses = shard_statuses(run_id, registry=registry)
        assert statuses[0].questions_done \
            == plan.shard_questions(0)
        assert statuses[1].questions_done == 0


# ----------------------------------------------------------------------
# Registry hardening (satellite)
# ----------------------------------------------------------------------
class TestRegistryHardening:
    def test_orphan_dir_is_skipped_not_fatal(self, registry):
        good = execute_run(RunRequest(**SMALL), registry=registry)
        (registry.root / "half-created-run").mkdir(parents=True)
        ids = registry.list_ids()
        assert good.run_id in ids
        assert "half-created-run" not in ids
        assert [p.name for p in registry.orphan_dirs()] \
            == ["half-created-run"]
        assert [s.run_id for s in registry.list_runs()] \
            == [good.run_id]

    def test_corrupt_manifest_is_flagged_not_fatal(self, registry):
        good = execute_run(RunRequest(**SMALL), registry=registry)
        bad_dir = registry.root / "corrupt-run"
        bad_dir.mkdir(parents=True)
        registry.manifest_path("corrupt-run").write_text(
            "{not json", encoding="utf-8")
        summaries = {s.run_id: s for s in registry.list_runs()}
        assert summaries[good.run_id].status == "finished"
        assert summaries["corrupt-run"].status == "invalid"
        assert summaries["corrupt-run"].dataset == "?"


# ----------------------------------------------------------------------
# Cache merge (satellite)
# ----------------------------------------------------------------------
class TestCacheMerge:
    def test_merge_caches_first_writer_wins(self):
        a, b = ResponseCache(), ResponseCache()
        a.put("m", "p1", "from-a")
        b.put("m", "p1", "from-b")
        b.put("m", "p2", "only-b")
        merged = merge_caches([a, b])
        assert merged.get("m", "p1") == "from-a"
        assert merged.get("m", "p2") == "only-b"

    def test_merge_respects_capacity(self):
        a = ResponseCache()
        for i in range(10):
            a.put("m", f"p{i}", f"r{i}")
        merged = merge_caches([a], capacity=4)
        assert len(merged.entries()) == 4

    def test_sharded_run_folds_shard_caches(self, registry,
                                            tmp_path):
        cache_path = tmp_path / "shared-cache.json"
        request = RunRequest(**SMALL, workers=2)
        sharded = execute_run_sharded(
            request, shards=2, registry=registry, procs=0,
            cache_path=str(cache_path))
        assert cache_path.exists()
        merged = ResponseCache.load(cache_path)
        assert len(merged.entries()) > 0
        for shard in range(2):
            shard_cache = registry.shard_cache_path(
                sharded.run_id, shard)
            assert shard_cache.exists()
        again = merge_shard_caches(sharded.run_id, registry=registry,
                                   target=str(cache_path))
        assert len(again.entries()) == len(merged.entries())


# ----------------------------------------------------------------------
# Garbage collection (satellite)
# ----------------------------------------------------------------------
class TestGc:
    def test_dry_run_reports_without_deleting(self, registry):
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=2,
                                      registry=registry, procs=0)
        shards_dir = registry.shards_dir(sharded.run_id)
        report = gc_runs(registry=registry, dry_run=True,
                         min_age_s=0.0)
        assert report.dry_run
        assert [c.reason for c in report.removed] == ["merged-shards"]
        assert report.bytes_reclaimed > 0
        assert shards_dir.is_dir()

    def test_gc_prunes_merged_shards_and_orphans(self, registry):
        sharded = execute_run_sharded(RunRequest(**SMALL), shards=2,
                                      registry=registry, procs=0)
        orphan = registry.root / "dead-create"
        orphan.mkdir(parents=True)
        (orphan / "junk.bin").write_bytes(b"x" * 64)
        stale = registry.run_dir(sharded.run_id) / "merge.ledger.tmp"
        stale.write_text("torn", encoding="utf-8")
        report = gc_runs(registry=registry, min_age_s=0.0)
        reasons = sorted(c.reason for c in report.removed)
        assert reasons == ["merged-shards", "orphan-run", "stale-tmp"]
        assert not registry.shards_dir(sharded.run_id).exists()
        assert not orphan.exists()
        assert not stale.exists()
        # the merged run itself is untouched and still loads
        assert load_run(sharded.run_id, registry=registry)

    def test_gc_never_touches_unmerged_shards(self, registry):
        from repro.dist import save_shard_plan
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        run_shard(run_id, 0, registry=registry, plan=plan)
        report = gc_runs(registry=registry, min_age_s=0.0)
        assert report.removed == ()
        assert registry.shards_dir(run_id).is_dir()

    def test_min_age_protects_fresh_debris(self, registry):
        orphan = registry.root / "fresh-create"
        orphan.mkdir(parents=True)
        report = gc_runs(registry=registry, min_age_s=3600.0)
        assert report.removed == ()
        assert orphan.exists()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCliDist:
    def _run(self, capsys, *argv):
        code = main(list(argv))
        assert code == 0
        return capsys.readouterr().out

    def test_sharded_run_then_inspect_merge_gc(self, capsys,
                                               tmp_path):
        runs_dir = str(tmp_path / "runs")
        out = self._run(capsys, "run", "--dataset", "mcq",
                        "--models", "GPT-4", "--taxonomies", "ebay",
                        "--sample", "6", "--seed", "cli",
                        "--shards", "2", "--local-procs", "0",
                        "--runs-dir", runs_dir)
        assert "Sharded run (x2)" in out
        run_id = RunRegistry(runs_dir).list_ids()[0]

        out = self._run(capsys, "runs", "list", "--runs-dir",
                        runs_dir)
        assert "shards" in out and "finished" in out

        out = self._run(capsys, "runs", "show", run_id,
                        "--runs-dir", runs_dir)
        assert "Shards (x2)" in out

        out = self._run(capsys, "watch", run_id, "--once",
                        "--runs-dir", runs_dir)
        assert run_id in out

        out = self._run(capsys, "runs", "merge", run_id,
                        "--runs-dir", runs_dir)
        assert f"Merged run {run_id}" in out

        out = self._run(capsys, "runs", "gc", "--dry-run",
                        "--min-age", "0", "--json",
                        "--runs-dir", runs_dir)
        report = json.loads(out)
        assert report["dry_run"] is True
        assert any(c["reason"] == "merged-shards"
                   for c in report["removed"])

    def test_watch_once_on_unmerged_run_shows_shards(self, capsys,
                                                     tmp_path):
        from repro.dist import save_shard_plan
        registry = RunRegistry(tmp_path / "runs")
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        run_shard(run_id, 0, registry=registry, plan=plan)
        out = self._run(capsys, "watch", run_id, "--once",
                        "--runs-dir", str(tmp_path / "runs"))
        assert "[sharded x2]" in out
        out = self._run(capsys, "watch", run_id, "--once", "--json",
                        "--runs-dir", str(tmp_path / "runs"))
        statuses = json.loads(out)
        assert [s["shard"] for s in statuses] == [0, 1]

    def test_cli_resume_routes_to_sharded(self, capsys, tmp_path):
        from repro.dist import save_shard_plan
        registry = RunRegistry(tmp_path / "runs")
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        run_shard(run_id, 0, registry=registry, plan=plan)
        out = self._run(capsys, "runs", "resume", run_id,
                        "--local-procs", "0",
                        "--runs-dir", str(tmp_path / "runs"))
        assert f"Resumed sharded run {run_id}" in out
        assert registry.summary(run_id).status == "finished"


# ----------------------------------------------------------------------
# Cross-cell integrity checks in the merge
# ----------------------------------------------------------------------
class TestMergeValidation:
    def test_plan_size_mismatch_detected(self, registry):
        from repro.dist import save_shard_plan
        request = RunRequest(**SMALL)
        run_id = registry.create(request, cells=8)
        plan = plan_shards(request, 2)
        save_shard_plan(registry, run_id, plan)
        run_shard(run_id, 0, registry=registry, plan=plan)
        run_shard(run_id, 1, registry=registry, plan=plan)
        # corrupt the persisted plan: shrink one cell's n
        payload = plan.to_dict()
        payload["cells"][0]["n"] += 5
        registry.shard_plan_path(run_id).write_text(
            json.dumps(payload), encoding="utf-8")
        with pytest.raises(RunError):
            merge_run(run_id, registry=registry)

    def test_cell_key_parse_round_trips_plan_cells(self):
        plan = plan_shards(RunRequest(**SMALL), 2)
        for cell_id, _ in plan.cells:
            key = CellKey.parse(cell_id)
            assert key is not None
            assert key.cell_id == cell_id
