"""Tests for repro.obs: tracer, metrics, exporters, logs, surfacing.

The acceptance criterion of the observability tentpole lives here:
an executed run's span log must export to valid Chrome ``trace_event``
JSON whose reconstructed ``run -> cell -> question`` tree matches the
ledger's scored-question records exactly, cell for cell.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro.engine.cache import (PERSIST_CORRUPT, PERSIST_LOADS,
                                PERSIST_SAVES, ResponseCache)
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.middleware import FaultInjectingModel, RetryingModel
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry
from repro.errors import RunError
from repro.llm.registry import get_model
from repro.obs import (NULL_TRACER, MetricsRegistry, Tracer,
                       chrome_trace, configure_logging)
from repro.obs.export import (JsonlSpanSink, format_prometheus,
                              read_spans_jsonl, registry_from_spans,
                              span_tree, write_spans_jsonl)
from repro.obs.logs import get_logger
from repro.obs.metrics import Counter, Histogram, global_registry
from repro.obs.report import flame_report, phase_rows, phase_table
from repro.obs.tracer import Span
from repro.runs import (RunLedger, RunRegistry, RunRequest,
                        execute_run)
from repro.store.artifacts import ArtifactStore
from repro.store.parallel import build_all_datasets
from repro.cli import main


class FakeClock:
    """Each read advances one second: deterministic span durations."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


@pytest.fixture()
def propagating_logs():
    """Let ``repro.*`` records reach caplog's root handler."""
    root = logging.getLogger("repro")
    before = root.propagate
    root.propagate = True
    yield
    root.propagate = before


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_parents_and_durations(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("run") as run:
            with tracer.span("cell", model="GPT-4") as cell:
                assert tracer.current_id() == cell.span_id
            with tracer.span("cell") as sibling:
                pass
        spans = {span.name: span for span in tracer.spans()}
        assert len(tracer.spans()) == 3
        assert spans["run"].parent_id is None
        assert cell.parent_id == sibling.parent_id == run.span_id
        assert cell.attrs["model"] == "GPT-4"
        # Fake clock ticks once per start/end read: every span closed.
        assert all(span.duration_s > 0 for span in tracer.spans())
        # Completion order: children before the root.
        assert [span.name for span in tracer.spans()] == \
            ["cell", "cell", "run"]

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.end_s is not None

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("cell") as cell:
            parent = tracer.current_id()

            def worker():
                # A fresh thread has no open spans...
                assert tracer.current_id() is None
                # ...so nesting under the cell takes the explicit id.
                with tracer.span("question", parent=parent):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        question = next(span for span in tracer.spans()
                        if span.name == "question")
        assert question.parent_id == cell.span_id
        assert question.thread_id != cell.thread_id

    def test_concurrent_spans_from_eight_threads(self):
        tracer = Tracer()
        per_thread = 50

        def worker(tag: int):
            for index in range(per_thread):
                with tracer.span("work", tag=tag, index=index):
                    pass

        threads = [threading.Thread(target=worker, args=(tag,))
                   for tag in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == 8 * per_thread
        ids = [span.span_id for span in spans]
        assert len(set(ids)) == len(ids)

    def test_adopt_remaps_ids_and_rehomes_roots(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("taxonomy"):
            with worker.span("encode"):
                pass
        payloads = [span.to_dict() for span in worker.spans()]

        driver = Tracer(clock=FakeClock())
        with driver.span("build") as build:
            pass
        adopted = driver.adopt(payloads, parent=build.span_id)
        by_name = {span.name: span for span in adopted}
        # The worker's ids collide with the driver's; adopt remaps.
        assert {span.span_id for span in driver.spans()} == \
            {span.span_id for span in driver.spans()}
        assert len({span.span_id for span in driver.spans()}) == 3
        assert by_name["taxonomy"].parent_id == build.span_id
        assert by_name["encode"].parent_id == \
            by_name["taxonomy"].span_id

    def test_sink_streams_every_finished_span(self):
        finished: list[Span] = []
        tracer = Tracer(clock=FakeClock(), sink=finished.append)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in finished] == ["inner", "outer"]

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", parent=7, attr=1) as span:
            span.set(more=2)     # accepted and dropped
            assert span.span_id == 0
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.current_id() is None
        assert NULL_TRACER.adopt([{"name": "x"}]) == []

    def test_span_dict_round_trip(self):
        span = Span(name="q", span_id=3, parent_id=1, start_s=1.5,
                    end_s=2.5, thread_id=9, attrs={"uid": "q1"})
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone == span
        assert clone.duration_s == 1.0
        open_span = Span(name="q", span_id=4, parent_id=None,
                         start_s=1.0)
        assert open_span.duration_s == 0.0
        assert Span.from_dict(open_span.to_dict()).end_s is None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_is_monotonic(self):
        counter = Counter("c")
        counter.add(2)
        counter.add(0.5)
        assert counter.value == 2.5
        with pytest.raises(ValueError):
            counter.add(-1)

    def test_histogram_quantiles_and_extremes(self):
        histogram = Histogram("h", bounds=(0.01, 0.1, 1.0))
        for value in ([0.005] * 50 + [0.05] * 30 + [0.5] * 20):
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.min == 0.005
        assert histogram.max == 0.5
        assert histogram.mean == pytest.approx(0.1175)
        assert sum(histogram.bucket_counts()) == 100
        # p50 lands in the first bucket, bounded by the exact extremes.
        assert 0.005 <= histogram.quantile(0.5) <= 0.01
        # p90/p99 interpolate past the data: clamped to the exact max.
        assert histogram.quantile(0.9) == 0.5
        assert histogram.quantile(0.99) == 0.5

    def test_empty_histogram_is_all_zero(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.99) == 0.0
        assert histogram.count == 0
        assert histogram.min == histogram.max == histogram.mean == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 0.5))

    def test_registry_get_or_create_and_kind_conflict(self):
        registry = MetricsRegistry()
        counter = registry.counter("x", "help text")
        assert registry.counter("x") is counter
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("calls").add(3)
        registry.gauge("workers").set_max(8)
        histogram = registry.histogram("lat", bounds=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(2.0)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict())))
        assert clone.to_dict() == registry.to_dict()
        assert clone.histogram("lat", bounds=(0.1, 1.0)).max == 2.0
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"x": {"kind": "mystery"}})

    def test_concurrent_recording_matches_serial_tally(self):
        telemetry = Telemetry()
        threads = 8
        per_thread = 200

        def worker(tag: int):
            for index in range(per_thread):
                telemetry.record_call()
                telemetry.record_work(0.001 * (index % 7 + 1))
                telemetry.record_cache(hit=index % 2 == 0)
                if index % 10 == 0:
                    telemetry.record_retry()
                    telemetry.record_fault(timeout=index % 20 == 0)

        pool = [threading.Thread(target=worker, args=(tag,))
                for tag in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        telemetry.record_run(1.0, threads)
        stats = telemetry.snapshot()
        total = threads * per_thread
        assert stats.records == stats.calls == total
        assert stats.cache_hits == stats.cache_misses == total // 2
        assert stats.retries == stats.faults == threads * 20
        assert stats.timeouts == threads * 10
        assert stats.busy_time_s == pytest.approx(
            sum(0.001 * (index % 7 + 1)
                for index in range(per_thread)) * threads)
        assert stats.latency_min_s == pytest.approx(0.001)
        assert stats.latency_max_s == pytest.approx(0.007)
        assert stats.workers == threads


# ----------------------------------------------------------------------
# EngineStats snapshot compatibility
# ----------------------------------------------------------------------
class TestEngineStats:
    def test_zero_record_snapshot_has_no_division_errors(self):
        stats = Telemetry().snapshot()
        assert stats.records == 0
        assert stats.mean_latency_s == 0.0
        assert stats.utilization == 0.0
        assert stats.cache_hit_rate == 0.0
        assert stats.throughput == 0.0
        assert stats.latency_p50_s == stats.latency_max_s == 0.0
        assert stats.workers == 1
        # The report row renders without raising.
        assert stats.as_row()["p50_ms"] == "0.00"

    def test_to_dict_round_trip_keeps_histogram_fields(self):
        telemetry = Telemetry()
        for value in (0.002, 0.004, 0.4):
            telemetry.record_call()
            telemetry.record_work(value)
        telemetry.record_run(0.5, 4)
        stats = telemetry.snapshot()
        assert stats.latency_max_s == pytest.approx(0.4)
        assert stats.latency_p50_s > 0.0
        clone = EngineStats.from_dict(
            json.loads(json.dumps(stats.to_dict())))
        assert clone == stats

    def test_from_dict_tolerates_pre_histogram_ledgers(self):
        legacy = {"records": 5, "calls": 5, "retries": 0, "faults": 0,
                  "timeouts": 0, "cache_hits": 1, "cache_misses": 4,
                  "wall_time_s": 1.0, "busy_time_s": 0.5, "workers": 2}
        stats = EngineStats.from_dict(legacy)
        assert stats.records == 5
        assert stats.latency_p99_s == stats.latency_min_s == 0.0

    def test_as_row_appends_latency_columns_at_end(self):
        row = Telemetry().snapshot().as_row()
        assert list(row)[-2:] == ["p50_ms", "p99_ms"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_spans() -> list[Span]:
    tracer = Tracer(clock=FakeClock())
    with tracer.span("run", run_id="r1"):
        with tracer.span("cell", model="GPT-4"):
            with tracer.span("question", uid="q0"):
                pass
            with tracer.span("question", uid="q1"):
                pass
    return list(tracer.spans())


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        loaded = read_spans_jsonl(path)
        assert list(loaded) == spans
        write_spans_jsonl(spans[:1], path, append=True)
        assert len(read_spans_jsonl(path)) == len(spans) + 1

    def test_sink_streams_to_disk_as_spans_finish(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with JsonlSpanSink(path) as sink:
            tracer = Tracer(clock=FakeClock(), sink=sink)
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
                # inner is already durable while outer is still open.
                assert [span.name
                        for span in read_spans_jsonl(path)] == ["inner"]
        sink.close()             # idempotent
        assert [span.name for span in read_spans_jsonl(path)] == \
            ["inner", "outer"]

    def test_torn_final_line_is_dropped_with_warning(
            self, tmp_path, caplog, propagating_logs):
        spans = _sample_spans()
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        torn = path.read_text(encoding="utf-8")[:-9]
        path.write_text(torn, encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro"):
            loaded = read_spans_jsonl(path)
        assert len(loaded) == len(spans) - 1
        assert "torn-span-line dropped" in caplog.text

    def test_mid_file_corruption_raises(self, tmp_path):
        path = write_spans_jsonl(_sample_spans(),
                                 tmp_path / "spans.jsonl")
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[0] = lines[0][:-4]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt span log"):
            read_spans_jsonl(path)

    def test_chrome_trace_shape_and_ordering(self):
        spans = _sample_spans()
        document = chrome_trace(spans)
        events = document["traceEvents"]
        assert len(events) == len(spans)
        assert all(event["ph"] == "X" for event in events)
        timestamps = [event["ts"] for event in events]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] == 0.0         # origin-relative
        assert all(event["dur"] > 0 for event in events)
        # args carry the tree: ids resolve back to parent events.
        ids = {event["args"]["span_id"] for event in events}
        for event in events:
            parent = event["args"]["parent_id"]
            assert parent is None or parent in ids
        question = next(event for event in events
                        if event["name"] == "question")
        assert question["args"]["uid"] in {"q0", "q1"}

    def test_chrome_trace_skips_unfinished_spans(self):
        spans = _sample_spans()
        spans.append(Span(name="open", span_id=99, parent_id=None,
                          start_s=0.0))
        assert len(chrome_trace(spans)["traceEvents"]) == \
            len(spans) - 1

    def test_span_tree_groups_children_in_start_order(self):
        spans = _sample_spans()
        tree = span_tree(spans)
        cell = next(span for span in spans if span.name == "cell")
        assert [span.attrs["uid"]
                for span in tree[cell.span_id]] == ["q0", "q1"]

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_calls_total", "model calls").add(4)
        registry.gauge("repro_workers").set(8)
        histogram = registry.histogram("repro_latency_seconds",
                                       bounds=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = format_prometheus(registry)
        assert "# HELP repro_calls_total model calls" in text
        assert "# TYPE repro_calls_total counter" in text
        assert "repro_calls_total 4" in text
        assert "repro_workers 8" in text
        assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_min 0.05" in text
        assert "repro_latency_seconds_max 5" in text

    def test_registry_from_spans_folds_durations(self):
        registry = registry_from_spans(_sample_spans())
        metrics = registry.metrics()
        assert metrics["repro_span_question_total"].value == 2
        assert metrics["repro_span_question_seconds"].count == 2
        assert metrics["repro_span_run_total"].value == 1

    def test_prometheus_nonfinite_spellings(self):
        registry = MetricsRegistry()
        registry.gauge("repro_pos").set(float("inf"))
        registry.gauge("repro_neg").set(float("-inf"))
        registry.gauge("repro_nan").set(float("nan"))
        text = format_prometheus(registry)
        assert "repro_pos +Inf" in text
        assert "repro_neg -Inf" in text
        assert "repro_nan NaN" in text
        # Python's repr spellings never leak into the exposition.
        for token in text.split():
            assert token not in ("inf", "-inf", "nan")

    def test_prometheus_min_max_are_their_own_gauge_series(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds",
                           bounds=(0.1,)).observe(0.05)
        text = format_prometheus(registry)
        assert "# TYPE repro_latency_seconds_min gauge" in text
        assert "# TYPE repro_latency_seconds_max gauge" in text
        # The histogram family itself never claims the bare
        # suffixed names.
        histogram_block = text.split(
            "# TYPE repro_latency_seconds histogram")[1]
        histogram_block = histogram_block.split("# TYPE")[0]
        assert "_min" not in histogram_block
        assert "_max" not in histogram_block

    def test_prometheus_empty_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.histogram("repro_empty_seconds", bounds=(0.1, 1.0))
        text = format_prometheus(registry)
        assert "repro_empty_seconds_count 0" in text
        assert "# TYPE repro_empty_seconds_min gauge" in text
        for token in text.split():
            assert token not in ("inf", "-inf", "nan")

    def test_prometheus_inf_observation_renders_plus_inf(self):
        registry = MetricsRegistry()
        registry.histogram("repro_latency_seconds",
                           bounds=(0.1,)).observe(float("inf"))
        text = format_prometheus(registry)
        assert "repro_latency_seconds_max +Inf" in text
        assert "inf" not in text.split()


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def test_phase_rows_attribute_self_time(self):
        rows = phase_rows(_sample_spans())
        by_phase = {row["phase"]: row for row in rows}
        assert by_phase["question"]["count"] == 2
        # The run's self time excludes the cell nested inside it.
        run_total = float(str(by_phase["run"]["total_s"]))
        run_self = float(str(by_phase["run"]["self_s"]))
        assert run_self < run_total
        assert by_phase["run"]["share"].endswith("%")

    def test_tables_render_and_degrade_empty(self):
        assert "question" in phase_table(_sample_spans())
        assert "no spans recorded" in phase_table([])
        flame = flame_report(_sample_spans())
        assert "no spans recorded" in flame_report([])
        lines = flame.splitlines()
        assert lines[0] == "Trace flamegraph"
        # Indentation tracks depth: question sits two levels down.
        assert any(line.startswith("    question") for line in lines)
        assert any("x2" in line for line in lines
                   if "question" in line)


# ----------------------------------------------------------------------
# Logging satellite
# ----------------------------------------------------------------------
class TestLogging:
    def test_configure_logging_levels_and_idempotence(self):
        stream = io.StringIO()
        root = configure_logging(1, stream=stream)
        logger = get_logger("engine.middleware")
        logger.info("retry model=GPT-4 attempt=1/3")
        logger.debug("hidden at -v")
        assert "retry model=GPT-4" in stream.getvalue()
        assert "hidden at -v" not in stream.getvalue()

        quiet = io.StringIO()
        configure_logging(-1, stream=quiet)
        logger.warning("suppressed when quiet")
        logger.error("errors always surface")
        assert "suppressed" not in quiet.getvalue()
        assert "errors always surface" in quiet.getvalue()
        # Reconfiguring swaps the handler instead of stacking them.
        assert len(root.handlers) == 1

    def test_retry_and_fault_paths_emit_structured_lines(
            self, caplog, propagating_logs):
        flaky = FaultInjectingModel(get_model("GPT-4"), seed=3,
                                    failure_rate=1.0,
                                    max_consecutive=2)
        model = RetryingModel(flaky, RetryPolicy(retries=2),
                              sleeper=lambda seconds: None)
        with caplog.at_level(logging.INFO, logger="repro"):
            model.generate("Is Sinitic language a type of "
                           "Sino-Tibetan language?")
        assert "fault-injected model=GPT-4" in caplog.text
        assert "retry model=GPT-4 attempt=1/2" in caplog.text

    def test_corrupt_artifact_recovery_logs_once(
            self, tmp_path, caplog, propagating_logs):
        store = ArtifactStore(tmp_path)
        path = store.path_for("ebay", 4, "")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ torn", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert store.load("ebay", 4, "") is None
        assert "artifact-corrupt recovered" in caplog.text
        assert store.stats.invalid == 1

    def test_torn_ledger_line_logs_on_replay(
            self, tmp_path, caplog, propagating_logs):
        from repro.runs import replay_ledger
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.run_started("r1")
            ledger.cell_started("c1", 1)
        torn = path.read_text(encoding="utf-8")[:-7]
        path.write_text(torn, encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro"):
            replay_ledger(path)
        assert "ledger-torn-line dropped" in caplog.text


# ----------------------------------------------------------------------
# Cache persistence counters satellite
# ----------------------------------------------------------------------
class TestCacheCounters:
    def _value(self, name: str) -> float:
        return global_registry().counter(name).value

    def test_save_and_load_bump_global_counters(self, tmp_path):
        saves, loads = self._value(PERSIST_SAVES), \
            self._value(PERSIST_LOADS)
        cache = ResponseCache()
        cache.put("GPT-4", "p", "r")
        path = tmp_path / "cache.json"
        cache.save(path)
        assert self._value(PERSIST_SAVES) == saves + 1
        assert len(ResponseCache.load(path)) == 1
        ResponseCache.load(tmp_path / "missing.json")
        assert self._value(PERSIST_LOADS) == loads + 2

    def test_corrupt_load_counts_recovery_and_warns(
            self, tmp_path, caplog, propagating_logs):
        corrupt = self._value(PERSIST_CORRUPT)
        path = tmp_path / "cache.json"
        path.write_text('{"format_version": 1, "entr',
                        encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro"):
            cache = ResponseCache.load(path)
        assert len(cache) == 0
        assert self._value(PERSIST_CORRUPT) == corrupt + 1
        assert "cache-corrupt recovered" in caplog.text
        # A merely missing file is not a corruption event.
        ResponseCache.load(tmp_path / "absent.json")
        assert self._value(PERSIST_CORRUPT) == corrupt + 1


# ----------------------------------------------------------------------
# Dataset build spans
# ----------------------------------------------------------------------
class TestBuildSpans:
    def test_inline_build_traces_taxonomy_and_encode(self):
        tracer = Tracer()
        build_all_datasets(["ebay"], sample_size=5, store=False,
                           jobs=1, tracer=tracer)
        spans = tracer.spans()
        names = {span.name for span in spans}
        assert {"build", "taxonomy", "encode"} <= names
        build = next(span for span in spans if span.name == "build")
        assert build.parent_id is None
        assert all(span.parent_id == build.span_id
                   for span in spans if span.name != "build")

    def test_parallel_build_adopts_worker_spans(self):
        tracer = Tracer()
        build_all_datasets(["ebay", "glottolog"], sample_size=5,
                           store=False, jobs=2, tracer=tracer)
        spans = tracer.spans()
        build = next(span for span in spans if span.name == "build")
        taxonomy_spans = [span for span in spans
                          if span.name == "taxonomy"]
        encode_spans = [span for span in spans
                        if span.name == "encode"]
        assert {span.attrs["taxonomy"] for span in taxonomy_spans} == \
            {"ebay", "glottolog"}
        # Worker-process roots were re-homed under the driver's build.
        assert all(span.parent_id == build.span_id
                   for span in taxonomy_spans)
        assert {span.attrs["taxonomy"] for span in encode_spans} == \
            {"ebay", "glottolog"}
        ids = [span.span_id for span in spans]
        assert len(set(ids)) == len(ids)

    def test_warm_load_records_hit_spans(self, tmp_path):
        store = ArtifactStore(tmp_path)
        build_all_datasets(["ebay"], sample_size=5, store=store,
                           jobs=1)
        tracer = Tracer()
        build_all_datasets(["ebay"], sample_size=5, store=store,
                           jobs=1, tracer=tracer)
        load = next(span for span in tracer.spans()
                    if span.name == "load")
        assert load.attrs["hit"] is True
        assert not any(span.name == "encode"
                       for span in tracer.spans())


# ----------------------------------------------------------------------
# The acceptance criterion: trace tree == ledger contents
# ----------------------------------------------------------------------
class TestRunTraceAcceptance:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_trace_tree_matches_ledger_records(self, tmp_path,
                                               workers):
        registry = RunRegistry(tmp_path / "runs")
        request = RunRequest(models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=8,
                             workers=workers)
        engine = (EvaluationEngine(EngineConfig(max_workers=workers))
                  if workers > 1 else None)
        result = execute_run(request, registry=registry,
                             engine=engine)
        spans_path = registry.spans_path(result.run_id)
        assert spans_path.exists()
        spans = read_spans_jsonl(spans_path)

        document = chrome_trace(spans)
        events = document["traceEvents"]
        assert events and all(
            set(event) >= {"name", "ph", "ts", "dur", "pid", "tid",
                           "args"}
            for event in events)
        json.dumps(document)     # valid JSON all the way down

        # Rebuild the tree purely from the exported args.
        runs = [e for e in events if e["name"] == "run"]
        assert len(runs) == 1
        run_id = runs[0]["args"]["span_id"]
        assert runs[0]["args"]["run_id"] == result.run_id
        cells = {e["args"]["span_id"]: e for e in events
                 if e["name"] == "cell"}
        assert all(cell["args"]["parent_id"] == run_id
                   for cell in cells.values())
        questions_per_cell: dict[str, int] = {}
        for event in events:
            if event["name"] != "question":
                continue
            cell = cells[event["args"]["parent_id"]]
            cell_id = "|".join((cell["args"]["model"],
                                cell["args"]["label"],
                                cell["args"]["setting"]))
            questions_per_cell[cell_id] = \
                questions_per_cell.get(cell_id, 0) + 1

        state = registry.state(result.run_id)
        assert state.finished
        ledger_counts = {cell_id: len(cell_state.records)
                         for cell_id, cell_state
                         in state.cells.items()}
        assert questions_per_cell == ledger_counts
        assert sum(questions_per_cell.values()) == result.evaluated

        # Engine runs add model_call leaves under the question spans
        # (sequential runs have no middleware stack to trace).
        if workers > 1:
            question_ids = {e["args"]["span_id"] for e in events
                            if e["name"] == "question"}
            calls = [e for e in events if e["name"] == "model_call"]
            assert calls
            assert all(c["args"]["parent_id"] in question_ids
                       for c in calls)

    def test_trace_false_leaves_no_span_log(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        request = RunRequest(models=("GPT-4",),
                             taxonomy_keys=("ebay",), sample_size=6,
                             dataset="easy")
        result = execute_run(request, registry=registry, trace=False)
        assert not registry.spans_path(result.run_id).exists()
        # The stats snapshot still persists for sequential runs.
        state = registry.state(result.run_id)
        assert state.stats["records"] == result.evaluated
        assert state.stats["wall_time_s"] > 0


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------
class TestObsCli:
    def _run(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    @pytest.fixture()
    def traced_run(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "cli-runs")
        self._run(capsys, "run", "--models", "GPT-4", "--taxonomies",
                  "ebay", "--sample", "8", "--runs-dir", runs_dir)
        listing = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir", runs_dir))
        return runs_dir, listing[0]["run_id"]

    def test_obs_trace_emits_chrome_json(self, capsys, tmp_path,
                                         traced_run):
        runs_dir, run_id = traced_run
        document = json.loads(self._run(
            capsys, "obs", "trace", run_id, "--runs-dir", runs_dir))
        names = {event["name"] for event in document["traceEvents"]}
        assert {"run", "cell", "question"} <= names

        out = tmp_path / "trace.json"
        message = self._run(capsys, "obs", "trace", run_id, "--out",
                            str(out), "--runs-dir", runs_dir)
        assert "chrome://tracing" in message
        assert json.loads(
            out.read_text(encoding="utf-8"))["traceEvents"]

    def test_obs_metrics_and_report(self, capsys, traced_run):
        runs_dir, run_id = traced_run
        metrics = self._run(capsys, "obs", "metrics", run_id,
                            "--runs-dir", runs_dir)
        assert "# TYPE repro_span_question_seconds histogram" in \
            metrics
        assert 'le="+Inf"' in metrics
        report = self._run(capsys, "obs", "report", run_id,
                           "--runs-dir", runs_dir)
        assert "Where the wall-clock went" in report
        assert "Trace flamegraph" in report

    def test_runs_show_appends_stats_and_phase_table(
            self, capsys, traced_run):
        runs_dir, run_id = traced_run
        shown = self._run(capsys, "runs", "show", run_id,
                          "--runs-dir", runs_dir)
        assert "Engine stats (run-finished snapshot)" in shown
        assert "Where the wall-clock went" in shown

    def test_runs_diff_reports_perf_deltas(self, capsys, traced_run):
        runs_dir, run_id = traced_run
        self._run(capsys, "run", "--models", "GPT-4", "--taxonomies",
                  "ebay", "--sample", "8", "--runs-dir", runs_dir)
        other = json.loads(self._run(
            capsys, "runs", "list", "--json", "--runs-dir",
            runs_dir))[1]["run_id"]
        out = self._run(capsys, "runs", "diff", run_id, other,
                        "--runs-dir", runs_dir)
        assert "wall:" in out and "throughput:" in out
        payload = json.loads(self._run(
            capsys, "runs", "diff", run_id, other, "--json",
            "--runs-dir", runs_dir))
        assert payload["perf"]["wall_a_s"] >= 0.0

    def test_obs_without_span_log_raises_run_error(self, capsys,
                                                   tmp_path):
        runs_dir = str(tmp_path / "cli-runs")
        from repro.runs import create_run
        run_id = create_run(
            RunRequest(models=("GPT-4",), taxonomy_keys=("ebay",),
                       sample_size=6),
            registry=RunRegistry(runs_dir))
        with pytest.raises(RunError, match="no span log"):
            main(["obs", "trace", run_id, "--runs-dir", runs_dir])

    def test_verbosity_flags_tune_the_repro_logger(self, capsys,
                                                   tmp_path):
        runs_dir = str(tmp_path / "empty")
        self._run(capsys, "-v", "runs", "list", "--runs-dir",
                  runs_dir)
        assert logging.getLogger("repro").level == logging.INFO
        self._run(capsys, "-q", "runs", "list", "--runs-dir",
                  runs_dir)
        assert logging.getLogger("repro").level == logging.ERROR
        self._run(capsys, "runs", "list", "--runs-dir", runs_dir)
        assert logging.getLogger("repro").level == logging.WARNING
