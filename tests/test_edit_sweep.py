"""Tests for taxonomy editing and the cut-level sweep."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError
from repro.hybrid.membership import MembershipModel
from repro.hybrid.sweep import (SweepPoint, saving_at_precision,
                                sweep_cut_levels)
from repro.taxonomy.edit import TaxonomyEditor
from repro.taxonomy.validate import collect_problems


def _by_name(taxonomy, name):
    for node in taxonomy:
        if node.name == name:
            return node
    raise AssertionError(name)


class TestEditor:
    def test_add_child(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        audio = _by_name(toy_taxonomy, "Audio")
        new_id = editor.add(audio.node_id, "Soundbars")
        edited = editor.commit()
        assert edited.node(new_id).level == 2
        assert collect_problems(edited) == []

    def test_add_root(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        editor.add(None, "Garden")
        assert editor.commit().num_trees == 3

    def test_rename(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        audio = _by_name(toy_taxonomy, "Audio")
        editor.rename(audio.node_id, "Sound")
        assert editor.commit().node(audio.node_id).name == "Sound"

    def test_move_relevels_subtree(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        audio = _by_name(toy_taxonomy, "Audio")
        home = _by_name(toy_taxonomy, "Home")
        editor.move(audio.node_id, home.node_id)
        edited = editor.commit()
        assert edited.parent(audio.node_id).name == "Home"
        headphones = _by_name(edited, "Headphones")
        assert headphones.level == 2
        assert collect_problems(edited) == []

    def test_move_under_self_rejected(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        audio = _by_name(toy_taxonomy, "Audio")
        headphones = _by_name(toy_taxonomy, "Headphones")
        with pytest.raises(TaxonomyError):
            editor.move(audio.node_id, headphones.node_id)

    def test_prune_counts_subtree(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        electronics = _by_name(toy_taxonomy, "Electronics")
        removed = editor.prune(electronics.node_id)
        assert removed == 7  # Electronics + 2 children + 4 leaves
        edited = editor.commit()
        assert len(edited) == 3

    def test_prune_below_matches_case_study_cut(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        removed = editor.prune_below(1)
        assert removed == 5  # the five leaves
        edited = editor.commit()
        assert edited.num_levels == 2

    def test_log_counts_touched_nodes(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        audio = _by_name(toy_taxonomy, "Audio")
        home = _by_name(toy_taxonomy, "Home")
        editor.rename(audio.node_id, "Sound")     # 1 touch
        editor.move(audio.node_id, home.node_id)  # 4 touches (subtree)
        assert editor.log.total_touched == 5
        assert editor.log.count("rename") == 1

    def test_unknown_node_rejected(self, toy_taxonomy):
        with pytest.raises(TaxonomyError):
            TaxonomyEditor(toy_taxonomy).rename("ghost", "X")

    def test_empty_name_rejected(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        root = _by_name(toy_taxonomy, "Home")
        with pytest.raises(TaxonomyError):
            editor.add(root.node_id, "  ")

    def test_base_taxonomy_is_untouched(self, toy_taxonomy):
        editor = TaxonomyEditor(toy_taxonomy)
        electronics = _by_name(toy_taxonomy, "Electronics")
        editor.prune(electronics.node_id)
        assert len(toy_taxonomy) == 10  # original unchanged


class TestCutSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_cut_levels(sample_size=50)

    def test_covers_all_cut_levels(self, points):
        assert [point.cut_level for point in points] == [3, 2, 1, 0]

    def test_saving_grows_as_cut_rises(self, points):
        savings = [point.maintenance_saving for point in points]
        assert savings == sorted(savings)

    def test_precision_decays_as_cut_rises(self, points):
        assert points[0].precision > points[-1].precision + 0.1

    def test_level3_point_matches_case_study(self, points):
        level3 = points[0]
        assert level3.cut_level == 3
        assert level3.maintenance_saving == pytest.approx(0.588,
                                                          abs=0.005)
        assert level3.precision == pytest.approx(0.713, abs=0.06)

    def test_recall_stays_flat(self, points):
        recalls = [point.recall for point in points]
        assert max(recalls) - min(recalls) < 0.05

    def test_saving_at_precision_picks_frontier(self, points):
        pick = saving_at_precision(points, floor=0.5)
        assert pick is not None
        assert pick.precision >= 0.5
        for other in points:
            if other.precision >= 0.5:
                assert pick.maintenance_saving \
                    >= other.maintenance_saving

    def test_saving_at_impossible_floor(self, points):
        assert saving_at_precision(points, floor=1.01) is None

    def test_custom_membership_model(self):
        perfect = MembershipModel(recall_rate=1.0,
                                  false_positive_rate=0.0)
        points = sweep_cut_levels(sample_size=10, membership=perfect)
        assert all(point.precision == 1.0 for point in points)
        assert all(isinstance(point, SweepPoint) for point in points)
