"""Tests for error analysis, consistency probes, variants and export."""

from __future__ import annotations

import pytest

from repro.core.export import (diff_matrices, load_matrix,
                               matrix_from_payload, matrix_to_payload,
                               pool_result_to_payload, save_matrix)
from repro.core.metrics import Metrics
from repro.core.runner import EvaluationRunner
from repro.experiments.consistency import probe_consistency
from repro.experiments.errors_analysis import (abstention_calibration,
                                               error_breakdown)
from repro.experiments.variants import run_variants
from repro.llm.base import StaticResponder
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind


class TestErrorBreakdown:
    @pytest.fixture(scope="class")
    def run(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        runner = EvaluationRunner(keep_records=True)
        result = runner.evaluate(get_model("GPT-3.5"), pool)
        return pool, result

    def test_counts_sum_to_total(self, run):
        pool, result = run
        breakdown = error_breakdown(pool.questions, result.records)
        assert breakdown.total == len(pool)
        assert (breakdown.correct + breakdown.false_yes
                + breakdown.false_no + breakdown.wrong_option
                + breakdown.abstained_positive
                + breakdown.abstained_negative) == breakdown.total

    def test_agrees_with_metrics(self, run):
        pool, result = run
        breakdown = error_breakdown(pool.questions, result.records)
        assert breakdown.correct / breakdown.total \
            == pytest.approx(result.metrics.accuracy)

    def test_always_yes_is_pure_false_yes(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        runner = EvaluationRunner(keep_records=True)
        result = runner.evaluate(StaticResponder("yes", "Yes."), pool)
        breakdown = error_breakdown(pool.questions, result.records)
        assert breakdown.false_no == 0
        assert breakdown.false_yes > 0
        assert breakdown.wrong_option == 0

    def test_unknown_uid_rejected(self, run):
        pool, result = run
        with pytest.raises(ValueError):
            error_breakdown(pool.questions[:1], result.records)

    def test_as_row_keys(self, run):
        pool, result = run
        row = error_breakdown(pool.questions, result.records).as_row()
        assert "false-yes" in row
        assert row["model"] == "GPT-3.5"


class TestAbstentionCalibration:
    def test_perfectly_calibrated_positive(self):
        cells = {
            "easy-tax": Metrics(0.90, 0.02, 100),
            "mid-tax": Metrics(0.60, 0.20, 100),
            "hard-tax": Metrics(0.30, 0.50, 100),
        }
        assert abstention_calibration(cells) > 0.5

    def test_anticalibrated_negative(self):
        cells = {
            "easy-tax": Metrics(0.40, 0.50, 100),   # strong, abstains
            "hard-tax": Metrics(0.30, 0.00, 100),   # weak, never
        }
        assert abstention_calibration(cells) < 0.0

    def test_requires_two_cells(self):
        with pytest.raises(ValueError):
            abstention_calibration({"a": Metrics(0.5, 0.1, 10)})

    def test_gpt4_is_desirably_cautious(self, fast_bench):
        cells = {}
        for key in ("ebay", "google", "glottolog", "ncbi"):
            cells[key] = fast_bench.run(
                "GPT-4", key, DatasetKind.HARD).metrics
        assert abstention_calibration(cells) > 0.3


class TestConsistency:
    def test_simulated_model_is_mostly_consistent(self):
        report = probe_consistency(get_model("GPT-4"), "ebay",
                                   edges=40, chains=40)
        assert report.edges_probed == 40
        assert report.symmetry_violation_rate < 0.35
        assert 0.0 <= report.transitivity_violation_rate <= 1.0

    def test_always_yes_model_violates_symmetry_always(self):
        report = probe_consistency(StaticResponder("yes", "Yes."),
                                   "ebay", edges=20, chains=5)
        assert report.forward_yes == 20
        assert report.symmetry_violation_rate == 1.0
        assert report.transitivity_violation_rate == 0.0

    def test_always_no_model_has_no_premises(self):
        report = probe_consistency(StaticResponder("no", "No."),
                                   "ebay", edges=10, chains=10)
        assert report.forward_yes == 0
        assert report.symmetry_violation_rate == 0.0

    def test_report_row(self):
        report = probe_consistency(get_model("Flan-T5-3B"), "ebay",
                                   edges=10, chains=10)
        row = report.as_row()
        assert row["taxonomy"] == "ebay"
        assert "symmetry violations" in row

    def test_deterministic(self):
        first = probe_consistency(get_model("GPT-4"), "ebay",
                                  edges=15, chains=15)
        second = probe_consistency(get_model("GPT-4"), "ebay",
                                   edges=15, chains=15)
        assert first == second


class TestVariants:
    def test_spread_is_small_for_simulated_models(self):
        result = run_variants("GPT-4", "ebay", sample_size=40)
        assert result.accuracy_spread < 0.06
        assert len(result.wordings) == 3

    def test_mcq_uses_adjective_variants(self):
        result = run_variants("GPT-4", "ebay", DatasetKind.MCQ,
                              sample_size=30)
        assert "appropriate" in result.wordings

    def test_rows_shape(self):
        result = run_variants("Flan-T5-3B", "ebay", sample_size=20)
        rows = result.rows()
        assert len(rows) == 3
        assert rows[0]["wording"] == "a type of"


class TestExport:
    def _matrix(self):
        return {("GPT-4", "ebay"): Metrics(0.92, 0.01, 500),
                ("GPT-4", "ncbi"): Metrics(0.64, 0.13, 600)}

    def test_payload_round_trip(self):
        matrix = self._matrix()
        assert matrix_from_payload(matrix_to_payload(matrix)) == matrix

    def test_file_round_trip(self, tmp_path):
        matrix = self._matrix()
        path = tmp_path / "run.json"
        save_matrix(matrix, path, label="run-1")
        assert load_matrix(path) == matrix

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError):
            matrix_from_payload({"format_version": 99, "cells": []})

    def test_diff_flags_moved_cells(self):
        before = self._matrix()
        after = dict(before)
        after["GPT-4", "ncbi"] = Metrics(0.74, 0.13, 600)
        drifts = diff_matrices(before, after, tolerance=0.05)
        assert len(drifts) == 1
        assert drifts[0].taxonomy == "ncbi"
        assert drifts[0].delta == pytest.approx(0.10)

    def test_diff_ignores_small_moves(self):
        before = self._matrix()
        after = dict(before)
        after["GPT-4", "ebay"] = Metrics(0.93, 0.01, 500)
        assert diff_matrices(before, after) == []

    def test_diff_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_matrices({}, {}, tolerance=-0.1)

    def test_pool_result_payload(self, ebay_pools):
        pool = ebay_pools.level_pool(1, DatasetKind.MCQ)
        runner = EvaluationRunner(keep_records=True)
        result = runner.evaluate(get_model("GPT-4"), pool)
        payload = pool_result_to_payload(result)
        assert payload["n"] == len(pool)
        assert len(payload["records"]) == len(pool)
        assert payload["records"][0]["parsed"] in "ABCD" or \
            payload["records"][0]["parsed"] in ("idk", "unparseable")
