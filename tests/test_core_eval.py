"""Tests for metrics, results, the runner and report rendering."""

from __future__ import annotations

import pytest

from repro.core.benchmark import TaxoGlimpse
from repro.core.metrics import (Metrics, combine, retrieval_metrics,
                                summarize)
from repro.core.report import format_matrix, format_rows, matrix_to_csv
from repro.core.results import QuestionRecord, metrics_from_records
from repro.core.runner import EvaluationRunner
from repro.llm.base import StaticResponder
from repro.llm.prompting import PromptSetting
from repro.llm.registry import get_model
from repro.questions.model import Answer, DatasetKind


class TestMetrics:
    def test_summarize(self):
        metrics = summarize(8, 1, 10)
        assert metrics.accuracy == 0.8
        assert metrics.miss_rate == 0.1

    def test_summarize_rejects_overflow(self):
        with pytest.raises(ValueError):
            summarize(8, 3, 10)

    def test_summarize_rejects_zero_total(self):
        with pytest.raises(ValueError):
            summarize(0, 0, 0)

    def test_metrics_bounds_validated(self):
        with pytest.raises(ValueError):
            Metrics(1.2, 0.0, 5)

    def test_answered_accuracy(self):
        metrics = Metrics(0.45, 0.5, 100)
        assert metrics.answered_accuracy == pytest.approx(0.9)

    def test_answered_accuracy_all_missed(self):
        assert Metrics(0.0, 1.0, 10).answered_accuracy == 0.0

    def test_combine_weights_by_count(self):
        combined = combine([Metrics(1.0, 0.0, 10),
                            Metrics(0.0, 1.0, 30)])
        assert combined.accuracy == pytest.approx(0.25)
        assert combined.miss_rate == pytest.approx(0.75)
        assert combined.n == 40

    def test_combine_empty_rejected(self):
        with pytest.raises(ValueError):
            combine([])

    def test_retrieval_metrics(self):
        metrics = retrieval_metrics({"a", "b", "x"}, {"a", "b", "c"})
        assert metrics.precision == pytest.approx(2 / 3)
        assert metrics.recall == pytest.approx(2 / 3)
        assert metrics.f1 == pytest.approx(2 / 3)

    def test_retrieval_empty_sets(self):
        metrics = retrieval_metrics(set(), {"a"})
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0


class TestRecords:
    def _record(self, parsed, expected=Answer.YES):
        return QuestionRecord("uid", "m", "zero-shot", "Yes.",
                              parsed, expected)

    def test_correct(self):
        assert self._record(Answer.YES).correct

    def test_wrong(self):
        record = self._record(Answer.NO)
        assert not record.correct
        assert not record.missed

    def test_missed(self):
        record = self._record(Answer.IDK)
        assert record.missed
        assert not record.correct

    def test_unparseable_counts_as_miss(self):
        assert self._record(Answer.UNPARSEABLE).missed

    def test_metrics_from_records(self):
        records = [self._record(Answer.YES),
                   self._record(Answer.NO),
                   self._record(Answer.IDK),
                   self._record(Answer.YES)]
        metrics = metrics_from_records(records)
        assert metrics.accuracy == 0.5
        assert metrics.miss_rate == 0.25


class TestRunner:
    def test_always_yes_scores_half_on_balanced_pool(self, ebay_pools):
        # Easy pools are exactly half positives, so an always-Yes
        # model scores exactly 0.5 — a sanity anchor for the harness.
        pool = ebay_pools.total_pool(DatasetKind.EASY)
        result = EvaluationRunner().evaluate(
            StaticResponder("always-yes", "Yes."), pool)
        assert result.metrics.accuracy == pytest.approx(0.5)
        assert result.metrics.miss_rate == 0.0

    def test_always_idk_scores_zero_with_full_miss(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        result = EvaluationRunner().evaluate(
            StaticResponder("always-idk", "I don't know."), pool)
        assert result.metrics.accuracy == 0.0
        assert result.metrics.miss_rate == 1.0

    def test_keep_records(self, ebay_pools):
        pool = ebay_pools.level_pool(1, DatasetKind.MCQ)
        runner = EvaluationRunner(keep_records=True)
        result = runner.evaluate(get_model("GPT-4"), pool)
        assert len(result.records) == len(pool)
        assert all(r.response for r in result.records)

    def test_records_not_kept_by_default(self, ebay_pools):
        pool = ebay_pools.level_pool(1, DatasetKind.MCQ)
        result = EvaluationRunner().evaluate(get_model("GPT-4"), pool)
        assert result.records == ()

    def test_evaluate_questions_label(self, ebay_pools):
        questions = ebay_pools.level_pool(
            1, DatasetKind.HARD).questions[:6]
        result = EvaluationRunner().evaluate_questions(
            get_model("GPT-4"), questions, label="adhoc")
        assert result.pool_label == "adhoc"
        assert result.metrics.n == 6

    def test_evaluate_matrix_shape(self, ebay_pools):
        pools = {"ebay": ebay_pools.total_pool(DatasetKind.MCQ)}
        matrix = EvaluationRunner().evaluate_matrix(
            [get_model("GPT-4"), get_model("Mistral")], pools)
        assert set(matrix) == {("GPT-4", "ebay"), ("Mistral", "ebay")}

    def test_runner_is_deterministic(self, ebay_pools):
        pool = ebay_pools.total_pool(DatasetKind.HARD)
        first = EvaluationRunner().evaluate(get_model("Mixtral"), pool)
        second = EvaluationRunner().evaluate(get_model("Mixtral"), pool)
        assert first.metrics == second.metrics


class TestReports:
    def _matrix(self):
        return {("GPT-4", "ebay"): Metrics(0.9, 0.01, 100),
                ("GPT-4", "ncbi"): Metrics(0.6, 0.1, 100)}

    def test_format_matrix_contains_values(self):
        text = format_matrix(self._matrix(), ["GPT-4"],
                             {"ebay": "eBay", "ncbi": "NCBI"},
                             title="Table X")
        assert "Table X" in text
        assert "0.900" in text
        assert "0.100" in text
        assert "eBay" in text

    def test_format_matrix_missing_cells(self):
        text = format_matrix(self._matrix(), ["GPT-4"],
                             {"ebay": "eBay", "schema": "Schema"})
        assert "n/a" in text

    def test_csv_round_trip(self):
        csv_text = matrix_to_csv(self._matrix(), ["GPT-4"],
                                 ["ebay", "ncbi"])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "model,taxonomy,accuracy,miss_rate,n"
        assert len(lines) == 3

    def test_format_rows(self):
        text = format_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}],
                           title="T")
        assert text.splitlines()[0] == "T"
        assert "x" in text


class TestFacade:
    def test_run_returns_pool_result(self, fast_bench):
        result = fast_bench.run("GPT-4", "ebay", DatasetKind.HARD)
        assert result.metrics.n > 0
        assert 0.0 <= result.metrics.accuracy <= 1.0

    def test_run_level_restricts(self, fast_bench):
        total = fast_bench.run("GPT-4", "ebay", DatasetKind.MCQ)
        level = fast_bench.run("GPT-4", "ebay", DatasetKind.MCQ,
                               level=1)
        assert level.metrics.n < total.metrics.n

    def test_run_accepts_model_objects(self, fast_bench):
        result = fast_bench.run(StaticResponder("always-no", "No."),
                                "ebay", DatasetKind.EASY)
        assert result.metrics.accuracy == pytest.approx(0.5)

    def test_run_table_and_format(self, fast_bench):
        matrix = fast_bench.run_table(
            DatasetKind.MCQ, models=["GPT-4", "Flan-T5-3B"],
            taxonomy_keys=["ebay", "schema"])
        assert len(matrix) == 4
        text = fast_bench.format_table(matrix, title="MCQ")
        assert "GPT-4" in text
        assert "Schema" in text

    def test_pools_cached(self, fast_bench):
        assert fast_bench.pools("ebay") is fast_bench.pools("ebay")

    def test_custom_setting(self, fast_bench):
        result = fast_bench.run("Llama-2-7B", "ebay", DatasetKind.HARD,
                                setting=PromptSetting.FEW_SHOT)
        zero = fast_bench.run("Llama-2-7B", "ebay", DatasetKind.HARD)
        assert result.metrics.miss_rate < zero.metrics.miss_rate
