"""Shared fixtures for the test suite.

Heavy artifacts (full synthetic taxonomies, the default oracle) are
session-scoped; most tests run against a small hand-built taxonomy or
reduced sample sizes so the suite stays fast.
"""

from __future__ import annotations

import os

import pytest

from repro.core.benchmark import TaxoGlimpse
from repro.generators.registry import build_taxonomy
from repro.questions.pools import build_pools
from repro.runs.registry import RUNS_ENV
from repro.store.artifacts import STORE_ENV
from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.node import Domain


@pytest.fixture(scope="session", autouse=True)
def _hermetic_store(tmp_path_factory):
    """Point the artifact store at a per-session scratch directory.

    The suite still exercises the store-backed ``build_pools`` path,
    but never reads or writes the developer's ``~/.cache`` artifacts —
    every run starts cold and leaves nothing behind.
    """
    previous = os.environ.get(STORE_ENV)
    os.environ[STORE_ENV] = str(tmp_path_factory.mktemp("artifact-store"))
    yield
    if previous is None:
        os.environ.pop(STORE_ENV, None)
    else:
        os.environ[STORE_ENV] = previous


@pytest.fixture(scope="session", autouse=True)
def _hermetic_runs(tmp_path_factory):
    """Point the default run registry at a per-session scratch dir.

    Same contract as the artifact store above: code paths that fall
    back to the default ``RunRegistry()`` stay exercised without ever
    touching (or polluting) the developer's ``~/.cache`` runs.
    """
    previous = os.environ.get(RUNS_ENV)
    os.environ[RUNS_ENV] = str(tmp_path_factory.mktemp("run-registry"))
    yield
    if previous is None:
        os.environ.pop(RUNS_ENV, None)
    else:
        os.environ[RUNS_ENV] = previous


@pytest.fixture()
def toy_taxonomy():
    """A tiny 3-level shopping taxonomy with known structure.

    Electronics -> (Audio -> (Headphones, Speakers, Earbuds),
                    Video -> (Monitors,))
    Home        -> (Furniture -> (Chairs,))
    """
    builder = TaxonomyBuilder("Toy", Domain.SHOPPING,
                              concept_noun="products")
    electronics = builder.add_root("Electronics")
    home = builder.add_root("Home")
    audio = builder.add_child(electronics, "Audio")
    video = builder.add_child(electronics, "Video")
    furniture = builder.add_child(home, "Furniture")
    builder.add_child(audio, "Headphones")
    builder.add_child(audio, "Speakers")
    builder.add_child(audio, "Earbuds")
    builder.add_child(video, "Monitors")
    builder.add_child(furniture, "Chairs")
    return builder.build()


@pytest.fixture(scope="session")
def ebay_taxonomy():
    """The smallest real-shaped taxonomy (595 nodes)."""
    return build_taxonomy("ebay")


@pytest.fixture(scope="session")
def glottolog_taxonomy():
    return build_taxonomy("glottolog")


@pytest.fixture(scope="session")
def ncbi_taxonomy():
    return build_taxonomy("ncbi")


@pytest.fixture(scope="session")
def ebay_pools():
    """Small question pools over eBay for runner tests."""
    return build_pools("ebay", sample_size=20)


@pytest.fixture(scope="session")
def fast_bench():
    """A TaxoGlimpse facade with small per-level samples."""
    return TaxoGlimpse(sample_size=24)
