"""Tests for the GPU deployment planner (paper testbed substrate)."""

from __future__ import annotations

import pytest

from repro.errors import ModelError
from repro.llm.deployment import (Gpu, paper_fleet, plan_deployment)


class TestFleet:
    def test_paper_fleet_composition(self):
        fleet = paper_fleet()
        assert len(fleet) == 12
        assert sum(1 for gpu in fleet if gpu.ram_gb == 24.0) == 8
        assert sum(1 for gpu in fleet if gpu.ram_gb == 80.0) == 4

    def test_usable_headroom(self):
        gpu = Gpu("x", 100.0)
        assert gpu.usable_gb == pytest.approx(90.0)


class TestPlanning:
    def test_small_model_fits_one_gpu(self):
        plan = plan_deployment(["Flan-T5-3B"])
        placement = plan.placement_for("Flan-T5-3B")
        assert placement.tensor_parallel == 1

    def test_llama_70b_needs_multiple_gpus(self):
        plan = plan_deployment(["Llama-2-70B"])
        placement = plan.placement_for("Llama-2-70B")
        # 143 GB of weights cannot fit one 80 GB card.
        assert placement.tensor_parallel >= 2
        assert plan.feasible

    def test_whole_open_source_lineup_fits_paper_fleet(self):
        models = ["Llama-2-7B", "Llama-2-13B", "Llama-2-70B",
                  "Flan-T5-3B", "Flan-T5-11B", "Vicuna-7B"]
        plan = plan_deployment(models)
        assert plan.feasible
        assert len(plan.placements) == len(models)

    def test_loads_never_exceed_capacity(self):
        plan = plan_deployment(["Llama-2-70B", "Falcon-40B",
                                "Mixtral", "Vicuna-33B"])
        fleet = {gpu.name: gpu for gpu in paper_fleet()}
        for name, load in plan.load_gb.items():
            assert load <= fleet[name].usable_gb + 1e-9

    def test_infeasible_on_tiny_fleet(self):
        plan = plan_deployment(["Llama-2-70B"],
                               fleet=[Gpu("small", 8.0)])
        assert not plan.feasible
        assert plan.unplaced == ["Llama-2-70B"]

    def test_big_models_placed_first(self):
        plan = plan_deployment(["Flan-T5-3B", "Llama-2-70B"])
        assert plan.placements[0].model == "Llama-2-70B"

    def test_unknown_placement_lookup_rejected(self):
        plan = plan_deployment(["Flan-T5-3B"])
        with pytest.raises(ModelError):
            plan.placement_for("GPT-4")

    def test_api_model_rejected(self):
        with pytest.raises(ModelError):
            plan_deployment(["GPT-4"])

    def test_rows_shape(self):
        rows = plan_deployment(["Flan-T5-3B", "Mistral"]).as_rows()
        assert len(rows) == 2
        assert {"model", "ram_gb", "gpus", "tensor_parallel"} \
            == set(rows[0])
