"""Tests for instance typing datasets (Section 4.5) and products."""

from __future__ import annotations

import pytest

from repro.errors import QuestionGenerationError
from repro.generators.products import (category_head, product_names,
                                       products_for_node)
from repro.questions.instance_typing import (INSTANCE_TYPING_KEYS,
                                             build_instance_typing_pools,
                                             collect_instances)
from repro.questions.model import DatasetKind, QuestionKind
import random


class TestProducts:
    def test_category_head_last_two_words(self):
        assert category_head("Wireless Over-Ear Headphones") \
            == "Over-Ear Headphones"

    def test_category_head_single_word(self):
        assert category_head("Headphones") == "Headphones"

    def test_products_embed_category_head(self):
        titles = product_names("Wireless Headphones", 5)
        assert all("Headphones" in title for title in titles)

    def test_products_are_deterministic(self):
        assert product_names("Pencils", 4) == product_names("Pencils", 4)

    def test_products_vary_with_seed(self):
        assert product_names("Pencils", 4, seed="a") \
            != product_names("Pencils", 4, seed="b")

    def test_products_for_node(self, ebay_taxonomy):
        leaf = ebay_taxonomy.leaves()[0]
        titles = products_for_node(ebay_taxonomy, leaf.node_id, 3)
        assert len(titles) == 3


class TestInstanceCollection:
    def test_leaf_taxonomy_instances_are_deepest_level(
            self, glottolog_taxonomy):
        rng = random.Random(0)
        instances = collect_instances("glottolog", glottolog_taxonomy,
                                      rng)
        deepest = glottolog_taxonomy.num_levels - 1
        assert all(inst.anchor_level == deepest for inst in instances)
        assert len(instances) \
            == glottolog_taxonomy.level_width(deepest)

    def test_product_taxonomy_instances_are_titles(self):
        from repro.generators.registry import build_taxonomy
        taxonomy = build_taxonomy("google")
        instances = collect_instances("google", taxonomy,
                                      random.Random(0))
        node_names = {node.name for node in taxonomy}
        assert all(inst.name not in node_names
                   for inst in instances[:50])


class TestInstanceTypingPools:
    @pytest.fixture(scope="class")
    def glottolog_typing(self):
        return build_instance_typing_pools("glottolog",
                                           sample_size=40)

    def test_six_taxonomies_supported(self):
        assert set(INSTANCE_TYPING_KEYS) \
            == {"amazon", "google", "glottolog", "icd10cm", "oae",
                "ncbi"}

    def test_unsupported_taxonomy_rejected(self):
        with pytest.raises(QuestionGenerationError):
            build_instance_typing_pools("geonames")

    def test_target_levels_span_root_to_parent(self, glottolog_typing):
        levels = glottolog_typing.target_levels
        assert levels[0] == 0
        assert max(levels) == 4  # leaf level is 5; ancestors reach 4

    def test_positive_pairs_use_true_ancestors(self, glottolog_typing,
                                               glottolog_taxonomy):
        for level in glottolog_typing.target_levels:
            for question in glottolog_typing.questions(
                    level, DatasetKind.HARD):
                if question.kind is not QuestionKind.POSITIVE:
                    continue
                assert question.asked_parent_name \
                    == question.true_parent_name
                truth = glottolog_taxonomy.node(
                    question.true_parent_id)
                assert truth.level == level

    def test_hard_negatives_are_target_siblings(self, glottolog_typing,
                                                glottolog_taxonomy):
        questions = glottolog_typing.questions(2, DatasetKind.HARD)
        negatives = [q for q in questions
                     if q.kind is QuestionKind.NEGATIVE_HARD]
        assert negatives
        for question in negatives:
            siblings = {
                node.name for node in glottolog_taxonomy.siblings(
                    question.true_parent_id)}
            assert question.asked_parent_name in siblings

    def test_sets_are_balanced(self, glottolog_typing):
        for level in glottolog_typing.target_levels:
            for dataset in (DatasetKind.EASY, DatasetKind.HARD):
                questions = glottolog_typing.questions(level, dataset)
                positives = sum(
                    1 for q in questions
                    if q.kind is QuestionKind.POSITIVE)
                assert positives * 2 == len(questions)

    def test_total_concatenates(self, glottolog_typing):
        total = glottolog_typing.total(DatasetKind.HARD)
        assert len(total) == sum(
            len(glottolog_typing.questions(level, DatasetKind.HARD))
            for level in glottolog_typing.target_levels)

    def test_deterministic(self):
        first = build_instance_typing_pools("icd10cm", sample_size=20)
        second = build_instance_typing_pools("icd10cm", sample_size=20)
        assert [q.uid for q in first.total(DatasetKind.HARD)] \
            == [q.uid for q in second.total(DatasetKind.HARD)]

    def test_product_instance_pools_reach_leaf_level(self):
        pools = build_instance_typing_pools("google", sample_size=25)
        # Product targets include the anchor category itself (level 4).
        assert max(pools.target_levels) == 4
