"""Tests for repro.obs.cost and repro.obs.alerts.

Token/dollar accounting across execution shapes, budget enforcement
at cell boundaries, legacy-ledger compatibility, SLO alerting and the
CLI surfaces (`obs cost`, `obs check` cost gate, cost columns).
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.engine.cache import ResponseCache
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.scheduler import EvaluationEngine
from repro.errors import RunError
from repro.llm.base import StaticResponder
from repro.obs import (AlertEvaluator, AlertRule, BudgetGuard,
                       CostLedger, CostMeter, Thresholds,
                       check_entries, count_tokens,
                       escape_label_value, price_for, usd_to_nanos)
from repro.obs.cost import (CostCell, TokenCounter, call_cost_nanos,
                            nanos_to_usd)
from repro.obs.history import HistoryEntry
from repro.runs import (RunRegistry, RunRequest, diff_runs,
                        execute_run, load_run, resume_run)
from repro.dist import execute_run_sharded

SMALL = dict(models=("GPT-4", "GPT-3.5"), taxonomy_keys=("ebay",),
             sample_size=6)


@pytest.fixture()
def registry(tmp_path) -> RunRegistry:
    return RunRegistry(tmp_path / "runs")


def _entry(run_id: str, cost_nanos: int, accuracy: float = 0.9,
           **overrides) -> HistoryEntry:
    payload = dict(run_id=run_id, finished_at=1.0, dataset="hard",
                   attempts=1, cells=1, questions=10,
                   accuracy=accuracy, wall_time_s=1.0,
                   throughput=10.0, latency_p50_s=0.01,
                   latency_p99_s=0.05, cache_hit_rate=0.0,
                   cost_nanos=cost_nanos)
    payload.update(overrides)
    return HistoryEntry(**payload)


def _snapshot(**overrides) -> SimpleNamespace:
    """A RunProgress-shaped snapshot for alert metric extraction."""
    base = dict(run_id="r-01", status="running", questions_done=100,
                faults=0, elapsed_s=10.0, throughput=10.0,
                latency_p99_s=0.1, cost_usd=0.001)
    base.update(overrides)
    return SimpleNamespace(**base)


# ----------------------------------------------------------------------
# Token counting
# ----------------------------------------------------------------------
class TestTokenCounter:
    def test_heuristic_is_ceil_len_over_4(self):
        assert count_tokens("") == 0
        assert count_tokens("abcd") == 1
        assert count_tokens("abcde") == 2
        assert count_tokens("x" * 80) == 20

    def test_pure_function_of_text(self):
        text = "Is Sinitic language a type of Sino-Tibetan language?"
        assert count_tokens(text) == count_tokens(text)

    def test_per_name_override_wins(self):
        counter = TokenCounter()
        counter.register("Custom", lambda text: 7)
        try:
            assert counter.count("whatever", "Custom") == 7
            assert counter.count("whatever", "Other") == 2
        finally:
            counter.unregister("Custom")
        assert counter.count("whatever", "Custom") == 2

    def test_backend_count_tokens_hook(self):
        counter = TokenCounter()
        backend = SimpleNamespace(name="Hooked",
                                  count_tokens=lambda text: 99)
        assert counter.count("any text at all", backend) == 99
        # A registered override still beats the backend's own hook.
        counter.register("Hooked", lambda text: 1)
        assert counter.count("any text at all", backend) == 1


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------
class TestPricing:
    def test_api_tier_list_prices(self):
        price = price_for("GPT-4")
        assert price.basis == "api-tier"
        assert price.prompt_nanos_per_token == 30_000
        assert price.completion_nanos_per_token == 60_000

    def test_open_model_priced_from_gpu_seconds(self):
        price = price_for("Llama-2-70B")
        assert price.basis == "gpu-seconds"
        assert price.prompt_nanos_per_token > 0
        assert (price.prompt_nanos_per_token
                == price.completion_nanos_per_token)

    def test_unknown_model_gets_default_tier(self):
        price = price_for("some-custom-backend")
        assert price.basis == "default"
        assert price.prompt_nanos_per_token == 1_000

    def test_cost_is_integer_and_linear(self):
        a = call_cost_nanos("GPT-4", 100, 50)
        b = call_cost_nanos("GPT-4", 23, 7)
        both = call_cost_nanos("GPT-4", 123, 57)
        assert isinstance(a, int)
        assert a + b == both

    def test_nanos_usd_round_trip(self):
        assert usd_to_nanos(0.03) == 30_000_000
        assert nanos_to_usd(30_000_000) == pytest.approx(0.03)


# ----------------------------------------------------------------------
# CostMeter middleware
# ----------------------------------------------------------------------
class _RecordingTelemetry:
    def __init__(self):
        self.calls = []

    def record_tokens(self, prompt_tokens, completion_tokens,
                      cost_nanos):
        self.calls.append((prompt_tokens, completion_tokens,
                           cost_nanos))


class TestCostMeter:
    def test_bills_prompt_and_completion(self):
        telemetry = _RecordingTelemetry()
        meter = CostMeter(StaticResponder("GPT-4", "Yes."), telemetry)
        meter.generate("abcdefgh")          # 2 prompt tokens
        assert telemetry.calls == [
            (2, 1, call_cost_nanos("GPT-4", 2, 1))]

    def test_failed_attempt_still_pays_for_prompt(self):
        class Exploding:
            name = "GPT-4"

            def generate(self, prompt):
                raise RuntimeError("boom")

        telemetry = _RecordingTelemetry()
        meter = CostMeter(Exploding(), telemetry)
        with pytest.raises(RuntimeError):
            meter.generate("abcdefgh")
        assert telemetry.calls == [
            (2, 0, call_cost_nanos("GPT-4", 2, 0))]

    def test_cache_hits_cost_zero_through_the_engine(self):
        engine = EvaluationEngine(EngineConfig(max_workers=1),
                                  cache=ResponseCache())
        wrapped = engine.wrap(StaticResponder("GPT-4", "Yes."))
        wrapped.generate("abcdefgh")
        first = engine.stats()
        wrapped.generate("abcdefgh")        # served from cache
        second = engine.stats()
        assert first.cost_nanos > 0
        assert second.cost_nanos == first.cost_nanos
        assert second.prompt_tokens == first.prompt_tokens
        assert second.cache_hits == first.cache_hits + 1


# ----------------------------------------------------------------------
# Budget enforcement
# ----------------------------------------------------------------------
class TestBudgetGuard:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValueError):
            BudgetGuard(max_cost_usd=0)
        with pytest.raises(ValueError):
            BudgetGuard(max_tokens=-1)
        with pytest.raises(RunError):
            RunRequest(**SMALL, max_cost_usd=-0.5)

    def test_stop_reason_transitions(self):
        guard = BudgetGuard(max_cost_usd=0.01, max_tokens=1_000)
        under = SimpleNamespace(prompt_tokens=10,
                                completion_tokens=10,
                                cost_nanos=usd_to_nanos(0.001))
        assert guard.stop_reason(under, completed_cells=1) is None
        pricey = SimpleNamespace(prompt_tokens=10,
                                 completion_tokens=10,
                                 cost_nanos=usd_to_nanos(0.02))
        stop = guard.stop_reason(pricey, completed_cells=2)
        assert stop is not None and stop.limit == "max_cost_usd"
        assert stop.completed_cells == 2
        wordy = SimpleNamespace(prompt_tokens=900,
                                completion_tokens=200,
                                cost_nanos=0)
        stop = guard.stop_reason(wordy, completed_cells=3)
        assert stop is not None and stop.limit == "max_tokens"

    def test_disabled_guard_never_stops(self):
        guard = BudgetGuard()
        assert not guard.enabled
        rich = SimpleNamespace(prompt_tokens=10**9,
                               completion_tokens=10**9,
                               cost_nanos=10**18)
        assert guard.stop_reason(rich, completed_cells=0) is None

    def test_budget_params_stamp_the_fingerprint(self):
        plain = RunRequest(**SMALL)
        capped = RunRequest(**SMALL, max_cost_usd=0.05)
        assert plain.fingerprint() != capped.fingerprint()
        decoded = RunRequest.from_dict(capped.to_dict())
        assert decoded.max_cost_usd == 0.05
        assert decoded.fingerprint() == capped.fingerprint()


class TestBudgetedRuns:
    def test_stops_at_cell_boundary_and_resumes_bit_identical(
            self, registry):
        capped = execute_run(
            RunRequest(**SMALL, max_cost_usd=0.0001),
            registry=registry)
        assert capped.budget is not None
        assert capped.budget["limit"] == "max_cost_usd"
        # Whole cells only: the stop left no partially-written cell.
        assert 0 < len(capped.cells) < 4
        state = registry.state(capped.run_id)
        assert not state.finished
        assert state.budget is not None
        summary = {s.run_id: s for s in registry.list_runs()}
        assert summary[capped.run_id].status == "budget-stopped"

        resumed = resume_run(capped.run_id, registry=registry)
        assert resumed.budget is None
        assert registry.state(capped.run_id).finished

        free = execute_run(RunRequest(**SMALL), registry=registry)
        diff = diff_runs(resumed, free)
        assert diff.identical
        assert (CostLedger.from_run(capped.run_id,
                                    registry=registry).to_dict()
                == {**CostLedger.from_run(free.run_id,
                                          registry=registry).to_dict(),
                    "run_id": capped.run_id})

    def test_budget_stop_skips_history(self, registry):
        from repro.obs import read_history
        capped = execute_run(
            RunRequest(**SMALL, max_tokens=1),
            registry=registry)
        assert capped.budget is not None
        assert all(entry.run_id != capped.run_id
                   for entry in read_history(registry))


# ----------------------------------------------------------------------
# Cross-shape determinism
# ----------------------------------------------------------------------
class TestShardedCost:
    def test_sharded_totals_bit_identical_to_single_process(
            self, registry):
        request = RunRequest(**SMALL)
        sharded = execute_run_sharded(request, 2, registry=registry,
                                      procs=0)
        single = execute_run(request, registry=registry)
        assert sharded.stats is not None and single.stats is not None
        for attr in ("prompt_tokens", "completion_tokens",
                     "cost_nanos"):
            assert (getattr(sharded.stats, attr)
                    == getattr(single.stats, attr))
        ledger_a = CostLedger.from_run(sharded.run_id,
                                       registry=registry)
        ledger_b = CostLedger.from_run(single.run_id,
                                       registry=registry)
        assert ledger_a.total_cost_nanos == ledger_b.total_cost_nanos
        assert ledger_a.total_cost_nanos > 0


# ----------------------------------------------------------------------
# Legacy ledgers (pre-cost-accounting)
# ----------------------------------------------------------------------
class TestLegacyLedger:
    def _strip_token_fields(self, registry, run_id):
        path = registry.ledger_path(run_id)
        lines = []
        for line in path.read_text().splitlines():
            event = json.loads(line)
            if event.get("event") == "record":
                event.pop("prompt_tokens", None)
                event.pop("completion_tokens", None)
            lines.append(json.dumps(event))
        path.write_text("\n".join(lines) + "\n")

    def test_old_ledger_replays_with_zero_cost(self, registry,
                                               capsys):
        result = execute_run(RunRequest(**SMALL), registry=registry)
        self._strip_token_fields(registry, result.run_id)

        replayed = load_run(result.run_id, registry=registry)
        assert replayed.cells.keys() == result.cells.keys()
        for key, cell in replayed.cells.items():
            assert cell.metrics == result.cells[key].metrics
            assert all(record.prompt_tokens == 0
                       and record.completion_tokens == 0
                       for record in cell.records)

        ledger = CostLedger.from_run(result.run_id,
                                     registry=registry)
        assert ledger.total_cost_nanos == 0

        code = main(["runs", "show", result.run_id,
                     "--runs-dir", str(registry.root)])
        assert code == 0
        assert result.run_id in capsys.readouterr().out


# ----------------------------------------------------------------------
# Alerting
# ----------------------------------------------------------------------
class TestAlertRules:
    def test_rejects_unknown_metric_op_severity(self):
        with pytest.raises(ValueError):
            AlertRule("x", "no-such-metric", ">", 1.0)
        with pytest.raises(ValueError):
            AlertRule("x", "error_rate", "!=", 1.0)
        with pytest.raises(ValueError):
            AlertRule("x", "error_rate", ">", 1.0, severity="loud")


class TestAlertEvaluator:
    def test_firing_and_resolved_transitions_once_per_episode(self):
        rule = AlertRule("errors", "error_rate", ">", 0.05)
        evaluator = AlertEvaluator(rules=(rule,), clock=lambda: 0.0)
        sick = _snapshot(faults=50)
        events = evaluator.observe(sick, now=1.0)
        assert [e.state for e in events] == ["firing"]
        assert evaluator.observe(sick, now=2.0) == []
        assert evaluator.active == [rule]
        healthy = _snapshot(faults=0)
        events = evaluator.observe(healthy, now=3.0)
        assert [e.state for e in events] == ["resolved"]
        assert evaluator.active == []

    def test_for_s_debounces_short_breaches(self):
        rule = AlertRule("slow", "p99_latency_s", ">", 1.0, for_s=5.0)
        evaluator = AlertEvaluator(rules=(rule,))
        slow = _snapshot(latency_p99_s=2.0)
        assert evaluator.observe(slow, now=0.0) == []
        assert evaluator.observe(slow, now=3.0) == []
        # Breach clears before for_s elapses: the window resets.
        assert evaluator.observe(_snapshot(latency_p99_s=0.1),
                                 now=4.0) == []
        assert evaluator.observe(slow, now=10.0) == []
        events = evaluator.observe(slow, now=16.0)
        assert [e.state for e in events] == ["firing"]

    def test_cold_start_never_pages(self):
        evaluator = AlertEvaluator()
        cold = _snapshot(questions_done=0, elapsed_s=0.0,
                         throughput=0.0, latency_p99_s=0.0,
                         cost_usd=0.0)
        assert evaluator.observe(cold, now=0.0) == []
        assert evaluator.active == []

    def test_cost_burn_rate_fires_on_expensive_runs(self):
        evaluator = AlertEvaluator()
        burning = _snapshot(elapsed_s=60.0, cost_usd=2.0)
        events = evaluator.observe(burning, now=0.0)
        assert any(e.rule.name == "cost-burn-rate"
                   and e.state == "firing" for e in events)
        banner = evaluator.banner()
        assert banner is not None and "cost-burn-rate" in banner

    def test_stall_rule_is_critical(self):
        evaluator = AlertEvaluator()
        events = evaluator.observe(_snapshot(status="stalled"),
                                   now=0.0)
        stalled = [e for e in events if e.rule.name == "run-stalled"]
        assert stalled and stalled[0].rule.severity == "critical"

    def test_assess_reports_every_rule(self):
        evaluator = AlertEvaluator()
        rows = evaluator.assess(_snapshot(faults=50))
        assert {row["name"] for row in rows} == {
            rule.name for rule in evaluator.rules}
        by_name = {row["name"]: row for row in rows}
        assert by_name["high-error-rate"]["breached"] is True


# ----------------------------------------------------------------------
# Prometheus escaping (satellite)
# ----------------------------------------------------------------------
class TestPrometheusEscaping:
    def test_escapes_backslash_quote_newline(self):
        assert (escape_label_value('a\\b"c\nd')
                == 'a\\\\b\\"c\\nd')
        assert escape_label_value("plain") == "plain"

    def test_cost_series_escape_label_values(self):
        cell = CostCell(model='M"odel\\1', taxonomy="tax\nonomy",
                        setting="zero-shot", questions=1,
                        prompt_tokens=10, completion_tokens=5,
                        cost_nanos=100)
        text = CostLedger("r-01", [cell]).to_prometheus()
        assert 'model="M\\"odel\\\\1"' in text
        assert 'taxonomy="tax\\nonomy"' in text
        assert "\n " not in text.replace("} ", "}|")


# ----------------------------------------------------------------------
# Regression gate cost check
# ----------------------------------------------------------------------
class TestCostGate:
    def test_cost_blowup_fails_the_gate(self):
        report = check_entries(_entry("a", cost_nanos=100),
                               _entry("b", cost_nanos=130),
                               Thresholds())
        failing = [c for c in report.failures
                   if c.metric == "cost_blowup_pct"]
        assert failing and not report.passed
        assert failing[0].delta == pytest.approx(30.0)

    def test_within_threshold_passes(self):
        report = check_entries(_entry("a", cost_nanos=100),
                               _entry("b", cost_nanos=110),
                               Thresholds())
        assert report.passed

    def test_zero_cost_baseline_skips_the_check(self):
        report = check_entries(_entry("a", cost_nanos=0),
                               _entry("b", cost_nanos=10**9),
                               Thresholds())
        assert all(c.metric != "cost_blowup_pct"
                   for c in report.checks)
        assert report.passed


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCostCli:
    @pytest.fixture()
    def finished_run(self, registry):
        return execute_run(RunRequest(**SMALL), registry=registry)

    def test_obs_cost_table_and_json(self, registry, finished_run,
                                     capsys):
        assert main(["obs", "cost", finished_run.run_id,
                     "--runs-dir", str(registry.root)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "cost_usd" in out

        assert main(["obs", "cost", finished_run.run_id, "--json",
                     "--runs-dir", str(registry.root)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["cost_nanos"] > 0
        assert len(payload["cells"]) == len(finished_run.cells)

    def test_obs_cost_prometheus(self, registry, finished_run,
                                 capsys):
        assert main(["obs", "cost", finished_run.run_id,
                     "--prometheus",
                     "--runs-dir", str(registry.root)]) == 0
        out = capsys.readouterr().out
        assert "repro_run_cost_usd{" in out
        assert 'model="GPT-4"' in out

    def test_runs_list_and_diff_show_cost(self, registry,
                                          finished_run, capsys):
        assert main(["runs", "list",
                     "--runs-dir", str(registry.root)]) == 0
        assert "cost_usd" in capsys.readouterr().out
        assert main(["runs", "diff", finished_run.run_id,
                     finished_run.run_id,
                     "--runs-dir", str(registry.root)]) == 0
        assert "cost: $" in capsys.readouterr().out

    def test_run_budget_flag_reports_the_stop(self, registry,
                                              capsys):
        code = main(["run", "--models", "GPT-4", "GPT-3.5",
                     "--taxonomies", "ebay", "--sample", "6",
                     "--max-tokens", "1",
                     "--runs-dir", str(registry.root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "BUDGET EXHAUSTED" in out
        assert "runs resume" in out
