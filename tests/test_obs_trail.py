"""Provenance trails: codec, predicates, middleware annotations.

Four concerns, one per class below:

* the ``Trail`` <-> dict codec round-trips every field combination and
  omits defaults (property-based, so the ledger format is pinned by
  construction, not by example);
* pre-trail ledgers (no ``trail`` key on record events) replay through
  ``runs show``, ``runs diff`` and ``obs trails`` unchanged;
* the ``obs grep`` predicate compiler honours precedence, keywords and
  its no-``eval`` error contract;
* each middleware layer annotates the ambient :class:`TrailContext`,
  and the composed retried + hedged story renders through the same
  narrative ``obs why`` prints (the acceptance demonstration).
"""

from __future__ import annotations

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import _why_trail_lines, main
from repro.core.results import QuestionRecord
from repro.engine.cache import CachedModel, ResponseCache
from repro.engine.config import RetryPolicy
from repro.engine.middleware import (FaultInjectingModel,
                                     RetryingModel)
from repro.engine.pool import BackendPool
from repro.errors import ModelError
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import read_spans_jsonl
from repro.obs.trail import (Trail, TrailContext, TrailQueryError,
                             compile_predicate, current_trail,
                             prompt_key, trail_env, trail_from_dict,
                             trail_scope, trail_summary,
                             trail_to_dict)
from repro.questions.model import Answer
from repro.runs import RunRegistry, RunRequest, execute_run


def _record(uid: str = "q0", parsed: Answer = Answer.YES,
            expected: Answer = Answer.YES,
            trail: Trail | None = None) -> QuestionRecord:
    return QuestionRecord(question_uid=uid, model="GPT-4",
                          setting="zero-shot", response="yes.",
                          parsed=parsed, expected=expected,
                          prompt_tokens=10, completion_tokens=2,
                          trail=trail)


# ----------------------------------------------------------------------
# Codec round trip (property-based)
# ----------------------------------------------------------------------
_ERROR_NAMES = st.sampled_from(
    ["ModelTransientError", "ModelTimeoutError", "ModelError"])

_TRAILS = st.builds(
    Trail,
    attempts=st.integers(min_value=1, max_value=6),
    errors=st.lists(_ERROR_NAMES, max_size=4).map(tuple),
    injected=st.booleans(),
    cache_hit=st.sampled_from([None, True, False]),
    cache_source=st.sampled_from([None, "memory", "persisted"]),
    coalesced=st.sampled_from([None, "leader", "follower"]),
    leader_key=st.one_of(st.none(),
                         st.text("0123456789abcdef",
                                 min_size=12, max_size=12)),
    rate_wait_s=st.floats(min_value=0.0, max_value=5.0,
                          allow_nan=False),
    timeout_lost_s=st.floats(min_value=0.0, max_value=5.0,
                             allow_nan=False),
    batch=st.one_of(st.none(), st.integers(1, 99)),
    batch_size=st.one_of(st.none(), st.integers(1, 64)),
    batch_cut=st.sampled_from([None, "size", "linger", "drain"]),
    replica=st.one_of(st.none(), st.integers(0, 7)),
    fallbacks=st.lists(st.integers(0, 7), max_size=4).map(tuple),
    hedged=st.booleans(),
    hedge_won=st.booleans(),
    billed_prompt_tokens=st.integers(0, 10_000),
    billed_completion_tokens=st.integers(0, 10_000),
    cost_nanos=st.integers(0, 10 ** 12),
)


class TestTrailCodec:
    @settings(max_examples=200, deadline=None)
    @given(trail=_TRAILS)
    def test_round_trip_identity(self, trail):
        assert trail_from_dict(trail_to_dict(trail)) == trail

    @settings(max_examples=100, deadline=None)
    @given(trail=_TRAILS)
    def test_round_trip_survives_json(self, trail):
        wire = json.loads(json.dumps(trail_to_dict(trail)))
        assert trail_from_dict(wire) == trail

    @settings(max_examples=100, deadline=None)
    @given(trail=_TRAILS)
    def test_codec_omits_defaults(self, trail):
        payload = trail_to_dict(trail)
        defaults = trail_to_dict(Trail())
        assert defaults == {}
        for key, value in payload.items():
            assert value != getattr(Trail(), key, object()) or \
                isinstance(value, list)

    def test_empty_dict_decodes_to_default_trail(self):
        assert trail_from_dict({}) == Trail()

    def test_unknown_keys_are_ignored(self):
        decoded = trail_from_dict({"attempts": 3,
                                   "from_the_future": "xyz"})
        assert decoded.attempts == 3
        assert decoded == Trail(attempts=3)

    def test_tuples_survive_list_encoding(self):
        trail = Trail(errors=("A", "B"), fallbacks=(0, 2))
        payload = trail_to_dict(trail)
        assert payload["errors"] == ["A", "B"]
        assert payload["fallbacks"] == [0, 2]
        decoded = trail_from_dict(payload)
        assert decoded.errors == ("A", "B")
        assert decoded.fallbacks == (0, 2)

    def test_prompt_key_is_stable_and_short(self):
        assert prompt_key("hello") == prompt_key("hello")
        assert prompt_key("hello") != prompt_key("world")
        assert len(prompt_key("hello")) == 12


# ----------------------------------------------------------------------
# Legacy ledgers: records without a trail key replay everywhere
# ----------------------------------------------------------------------
class TestLegacyLedgerReplay:
    def _cli(self, capsys, *argv: str) -> str:
        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def _strip_trails(self, ledger_path) -> int:
        """Rewrite a ledger as a pre-trail process would have written
        it: record events lose their ``trail`` key, bytes otherwise
        untouched."""
        stripped = 0
        lines = []
        with open(ledger_path, encoding="utf-8") as stream:
            for line in stream:
                event = json.loads(line)
                if event.get("event") == "record" and \
                        event.pop("trail", None) is not None:
                    stripped += 1
                lines.append(json.dumps(event))
        ledger_path.write_text("\n".join(lines) + "\n",
                               encoding="utf-8")
        return stripped

    def test_stripped_ledger_replays_through_cli(self, capsys,
                                                 tmp_path):
        runs_dir = str(tmp_path / "runs")
        for _ in range(2):
            self._cli(capsys, "run", "--models", "GPT-4",
                      "--taxonomies", "ebay", "--sample", "8",
                      "--trail", "--runs-dir", runs_dir)
        listing = json.loads(self._cli(
            capsys, "runs", "list", "--json", "--runs-dir", runs_dir))
        trailed, legacy = (listing[0]["run_id"],
                           listing[1]["run_id"])

        registry = RunRegistry(runs_dir)
        assert self._strip_trails(registry.ledger_path(legacy)) > 0

        # runs show decodes the stripped records without complaint.
        shown = json.loads(self._cli(
            capsys, "runs", "show", legacy, "--json",
            "--runs-dir", runs_dir))
        assert shown["finished"] is True

        # The determinism diff ignores trails entirely: a trailed run
        # and its trail-stripped twin are *identical*.
        diff = json.loads(self._cli(
            capsys, "runs", "diff", trailed, legacy, "--json",
            "--runs-dir", runs_dir))
        assert diff["identical"] is True

        # obs trails degrades to "no trails", never an error.
        summary = json.loads(self._cli(
            capsys, "obs", "trails", legacy, "--json",
            "--runs-dir", runs_dir))
        assert summary["totals"]["questions"] > 0
        assert summary["totals"]["with_trail"] == 0
        trailed_summary = json.loads(self._cli(
            capsys, "obs", "trails", trailed, "--json",
            "--runs-dir", runs_dir))
        assert trailed_summary["totals"]["with_trail"] == \
            trailed_summary["totals"]["questions"]

        # obs why reports the missing trail instead of failing.
        why = self._cli(capsys, "obs", "why", legacy, "0",
                        "--runs-dir", runs_dir)
        assert "no provenance trail recorded" in why

    def test_in_memory_decode_without_trail_key(self):
        record = _record(trail=Trail(attempts=2))
        from repro.core.results import record_from_dict, \
            record_to_dict
        payload = record_to_dict(record)
        del payload["trail"]
        legacy = record_from_dict(payload)
        assert legacy.trail is None
        assert legacy == record            # trail excluded from eq
        env = trail_env(legacy)
        assert env["has_trail"] is False
        assert env["attempts"] == 1 and env["cache_hit"] is None
        assert env["error_count"] == 0


# ----------------------------------------------------------------------
# Predicate compiler (obs grep --where)
# ----------------------------------------------------------------------
class TestPredicateCompiler:
    ENV = {"attempts": 3, "cache_hit": False, "replica": 1,
           "errors": ("ModelTimeoutError",), "error_count": 1,
           "correct": True, "cell": "GPT-4/ebay/zero-shot",
           "rate_wait_s": 0.25, "batch": None}

    def _match(self, expression: str, env: dict | None = None):
        return compile_predicate(expression)(env if env is not None
                                             else dict(self.ENV))

    def test_comparisons_and_keywords(self):
        assert self._match("attempts > 1")
        assert self._match("attempts >= 3 and attempts <= 3")
        assert self._match("cache_hit == false")
        assert self._match("cache_hit != true")
        assert self._match("batch == none")
        assert self._match("correct == true")
        assert not self._match("attempts < 3")

    def test_and_binds_tighter_than_or(self):
        # false and false or true  ==  (false and false) or true
        assert self._match("attempts < 0 and replica == 9 "
                           "or correct == true")
        # true or false and false  ==  true or (false and false)
        assert self._match("correct == true or attempts < 0 "
                           "and replica == 9")

    def test_not_and_parentheses(self):
        assert self._match("not cache_hit")
        assert self._match("not (attempts < 2)")
        assert not self._match("not (cache_hit == false or "
                               "attempts > 1)")

    def test_string_literals(self):
        assert self._match("cell == 'GPT-4/ebay/zero-shot'")
        assert self._match('cell != "other"')

    def test_unknown_identifier_is_none(self):
        assert self._match("no_such_field == none")
        assert not self._match("no_such_field == 1")

    def test_type_mismatch_comparison_is_false_not_raise(self):
        # replica is None on an untrailed question; ordering against
        # a number must select nothing, not blow up the whole grep.
        assert not self._match("batch > 2")
        assert not self._match("batch < 2")

    @pytest.mark.parametrize("bad", [
        "", "   ", "attempts >", "and attempts", "attempts ~ 1",
        "(attempts > 1", "attempts > 1)", "attempts > 1 extra",
        "== 3", "'unterminated",
    ])
    def test_malformed_expressions_raise(self, bad):
        with pytest.raises(TrailQueryError):
            compile_predicate(bad)

    def test_env_exposes_trail_and_record_fields(self):
        trail = Trail(attempts=2, errors=("ModelTransientError",),
                      cache_hit=False, replica=1, fallbacks=(0,),
                      hedged=True, hedge_won=True, cost_nanos=7)
        env = trail_env(_record(trail=trail), index=4, cell="c")
        assert env["index"] == 4 and env["cell"] == "c"
        assert env["has_trail"] is True
        assert env["attempts"] == 2 and env["error_count"] == 1
        assert env["hedge_won"] is True and env["cost_nanos"] == 7
        matcher = compile_predicate(
            "attempts > 1 and cache_hit == false and hedged")
        assert matcher(env)


# ----------------------------------------------------------------------
# Analytics fold
# ----------------------------------------------------------------------
class TestTrailSummary:
    def test_summary_folds_every_dimension(self):
        records = [
            _record("q0", trail=Trail(cache_hit=False)),
            _record("q1", trail=Trail(cache_hit=True,
                                      cache_source="persisted")),
            _record("q2", trail=Trail(
                attempts=3, errors=("ModelTransientError",) * 2,
                injected=True, cache_hit=False, batch=1,
                batch_size=2, batch_cut="size", rate_wait_s=0.5,
                billed_prompt_tokens=100,
                billed_completion_tokens=10,
                cost_nanos=2_000_000_000)),
            _record("q3", trail=Trail(
                coalesced="follower", leader_key="abc",
                replica=1, fallbacks=(0,), hedged=True,
                hedge_won=True, batch=1, batch_size=2,
                batch_cut="size")),
            _record("q4"),                       # untrailed
        ]
        summary = trail_summary(records)
        assert summary["questions"] == 5
        assert summary["with_trail"] == 4
        assert summary["cache"]["hits"] == 1
        assert summary["cache"]["misses"] == 2
        assert summary["cache"]["persisted_hits"] == 1
        assert summary["cache"]["hit_rate"] == pytest.approx(1 / 3)
        assert summary["coalesce"]["followers"] == 1
        assert summary["retry"]["retried"] == 1
        assert summary["retry"]["injected_faults"] == 1
        assert summary["retry"]["attempts"]["3"] == 1
        assert summary["retry"]["errors"][
            "ModelTransientError"] == 2
        assert summary["hedge"]["fired"] == 1
        assert summary["hedge"]["won"] == 1
        assert summary["hedge"]["fallback_calls"] == 1
        assert summary["batch"]["sizes"]["2"] == 2
        assert summary["batch"]["cuts"]["size"] == 2
        assert summary["waits"]["rate_wait_s"] == \
            pytest.approx(0.5)
        assert summary["cost"]["cost_nanos"] == 2_000_000_000

    def test_summary_of_untrailed_records(self):
        summary = trail_summary([_record(), _record()])
        assert summary["questions"] == 2
        assert summary["with_trail"] == 0
        assert summary["cache"]["hit_rate"] is None


# ----------------------------------------------------------------------
# Middleware annotations (the layers write what they know)
# ----------------------------------------------------------------------
class _Failing(BaseChatModel):
    """Backend that always raises a hard ModelError."""

    def __init__(self, name: str = "GPT-4"):
        super().__init__(name)
        self.calls = 0

    def _respond(self, prompt: str) -> str:
        self.calls += 1
        raise ModelError(f"{self.name}: down")


class _Slow(BaseChatModel):
    """Backend that answers correctly but only after a long sleep."""

    def __init__(self, delay_s: float, name: str = "GPT-4"):
        super().__init__(name)
        self.delay_s = delay_s
        self._inner = get_model(name)

    def _respond(self, prompt: str) -> str:
        time.sleep(self.delay_s)
        return self._inner.generate(prompt)


class TestMiddlewareAnnotations:
    def test_no_ambient_trail_outside_scope(self):
        assert current_trail() is None
        with trail_scope() as ctx:
            assert current_trail() is ctx
        assert current_trail() is None

    def test_cache_layer_annotates_hit_miss_and_source(self,
                                                       tmp_path):
        cache = ResponseCache()
        model = CachedModel(get_model("GPT-4"), cache)
        prompt = "Is headphones a kind of audio? answer yes or no."
        with trail_scope() as ctx:
            model.generate(prompt)
        miss = ctx.freeze()
        assert miss.cache_hit is False and miss.cache_source is None

        with trail_scope() as ctx:
            model.generate(prompt)
        assert ctx.freeze().cache_source == "memory"

        path = tmp_path / "cache.json"
        cache.save(path)
        warmed = CachedModel(get_model("GPT-4"),
                             ResponseCache.load(path))
        with trail_scope() as ctx:
            warmed.generate(prompt)
        hit = ctx.freeze()
        assert hit.cache_hit is True
        assert hit.cache_source == "persisted"

    def test_retry_layer_counts_attempts_and_faults(self):
        flaky = FaultInjectingModel(get_model("GPT-4"),
                                    failure_rate=1.0,
                                    max_consecutive=2)
        model = RetryingModel(flaky, RetryPolicy(retries=3),
                              sleeper=lambda _: None)
        with trail_scope() as ctx:
            model.generate("Is audio a kind of electronics?")
        trail = ctx.freeze()
        assert trail.attempts == 3
        assert trail.errors == ("ModelTransientError",) * 2
        assert trail.injected is True

    def test_pool_fallback_records_replica_order(self):
        pool = BackendPool([_Failing(), get_model("GPT-4")])
        with trail_scope() as ctx:
            pool.generate("Is video a kind of electronics?")
        trail = ctx.freeze()
        assert trail.replica == 1
        assert trail.fallbacks == (0,)
        assert trail.hedged is False

    def test_pool_hedge_records_winner(self):
        pool = BackendPool([_Slow(0.5), get_model("GPT-4")],
                           hedge_delay_s=0.01)
        try:
            with trail_scope() as ctx:
                pool.generate("Is furniture a kind of home?")
        finally:
            pool.close()
        trail = ctx.freeze()
        assert trail.hedged is True
        assert trail.hedge_won is True
        assert trail.replica == 1

    def test_note_cost_accumulates(self):
        ctx = TrailContext()
        ctx.note_cost(10, 2, 500)
        ctx.note_cost(5, 1, 250)
        trail = ctx.freeze()
        assert trail.billed_prompt_tokens == 15
        assert trail.billed_completion_tokens == 3
        assert trail.cost_nanos == 750


# ----------------------------------------------------------------------
# Acceptance: the retried + hedged question, explained
# ----------------------------------------------------------------------
class TestWhyNarrative:
    def test_retried_hedged_story_names_every_cause(self):
        """The composed worst-case question — injected faults forced
        retries, the pool's primary replica failed, a hedge won on the
        fallback — must read back with the attempt count, the error
        classes, the replica order and the batch id all named."""
        pool = BackendPool([_Failing(), get_model("GPT-4")])
        flaky = FaultInjectingModel(pool, failure_rate=1.0,
                                    max_consecutive=2)
        model = RetryingModel(flaky, RetryPolicy(retries=3),
                              sleeper=lambda _: None)
        with trail_scope() as ctx:
            model.generate("Is chairs a kind of furniture?")
            # Batch placement is stamped by the loop-thread
            # dispatcher in production; stamp it the same way here.
            ctx.batch = 2
            ctx.batch_size = 4
            ctx.batch_cut = "size"
            ctx.hedged = True
            ctx.hedge_won = True
        text = "\n".join(_why_trail_lines(
            trail_to_dict(ctx.freeze())))
        assert "3 attempt(s)" in text
        assert "ModelTransientError, ModelTransientError" in text
        assert "(injected)" in text
        assert "replica 1" in text
        assert "replica(s) 0 failed" in text
        assert "the hedge won" in text
        assert "batch #2 of 4 prompt(s)" in text
        assert "flushed on size" in text

    def test_batch_ids_in_trails_match_batch_spans(self, tmp_path):
        """A trail's batch id must cite a real ``batch`` span with
        the same sequence number and size — the join the narrative
        relies on."""
        registry = RunRegistry(str(tmp_path / "runs"))
        result = execute_run(
            RunRequest(models=("GPT-4",), taxonomy_keys=("ebay",),
                       sample_size=8, workers=4, batch_size=4,
                       trail=True),
            registry=registry)
        spans = read_spans_jsonl(registry.spans_path(result.run_id))
        batch_spans = {span.attrs["seq"]: span.attrs["size"]
                       for span in spans if span.name == "batch"}
        assert batch_spans, "batched run produced no batch spans"
        state = registry.state(result.run_id)
        checked = 0
        for cell in state.cells.values():
            for record in cell.records.values():
                assert record.trail is not None
                assert record.trail.batch in batch_spans
                assert record.trail.batch_size <= \
                    batch_spans[record.trail.batch]
                checked += 1
        assert checked > 0

    def test_obs_why_cli_text_for_real_run(self, capsys, tmp_path):
        runs_dir = str(tmp_path / "runs")
        assert main(["run", "--models", "GPT-4", "--taxonomies",
                     "ebay", "--sample", "6", "--trail",
                     "--workers", "2", "--coalesce",
                     "--runs-dir", runs_dir]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--json",
                     "--runs-dir", runs_dir]) == 0
        run_id = json.loads(
            capsys.readouterr().out)[0]["run_id"]
        assert main(["obs", "why", run_id, "0",
                     "--runs-dir", runs_dir]) == 0
        text = capsys.readouterr().out
        assert f"question 0 of run {run_id}" in text
        assert "cache: miss — went to the backend" in text
        assert "coalesced: led prompt" in text
        assert "model_call#" in text           # span citation
