"""Tests for the question data model and Table 2/3 templates."""

from __future__ import annotations

import pytest

from repro.errors import PromptError
from repro.questions.model import (Answer, DatasetKind, Question,
                                   QuestionKind, QuestionType,
                                   letter_answer, level_label)
from repro.questions.templates import (mcq_prompt, render_question,
                                       true_false_prompt)
from repro.taxonomy.node import Domain


def _tf_question(kind=QuestionKind.POSITIVE, domain=Domain.LANGUAGE):
    return Question(
        uid="q1", taxonomy_key="glottolog", domain=domain,
        qtype=QuestionType.TRUE_FALSE, kind=kind, level=2,
        child_id="c", child_name="Hailu", true_parent_id="p",
        true_parent_name="Hakka-Chinese",
        asked_parent_name="Hakka-Chinese" if
        kind is QuestionKind.POSITIVE else "Min-Chinese")


def _mcq_question():
    return Question(
        uid="q2", taxonomy_key="glottolog", domain=Domain.LANGUAGE,
        qtype=QuestionType.MCQ, kind=QuestionKind.MCQ, level=2,
        child_id="c", child_name="Hailu", true_parent_id="p",
        true_parent_name="Hakka-Chinese",
        options=("Min-Chinese", "Hakka-Chinese", "Gan", "Wu"),
        answer_index=1)


class TestQuestionModel:
    def test_positive_expects_yes(self):
        assert _tf_question().expected_answer is Answer.YES

    def test_negative_expects_no(self):
        question = _tf_question(QuestionKind.NEGATIVE_HARD)
        assert question.expected_answer is Answer.NO

    def test_mcq_expects_letter(self):
        assert _mcq_question().expected_answer is Answer.B

    def test_level_label_root(self):
        assert level_label(1) == "level 1-root"

    def test_level_label_deeper(self):
        assert level_label(4) == "level 4-3"

    def test_question_level_label_property(self):
        assert _tf_question().level_label == "level 2-1"

    def test_mcq_requires_four_options(self):
        with pytest.raises(ValueError):
            Question(uid="x", taxonomy_key="t", domain=Domain.HEALTH,
                     qtype=QuestionType.MCQ, kind=QuestionKind.MCQ,
                     level=1, child_id="c", child_name="c",
                     true_parent_id="p", true_parent_name="p",
                     options=("a", "b"), answer_index=0)

    def test_mcq_answer_index_bounds(self):
        with pytest.raises(ValueError):
            Question(uid="x", taxonomy_key="t", domain=Domain.HEALTH,
                     qtype=QuestionType.MCQ, kind=QuestionKind.MCQ,
                     level=1, child_id="c", child_name="c",
                     true_parent_id="p", true_parent_name="p",
                     options=("a", "b", "c", "d"), answer_index=7)

    def test_tf_requires_asked_parent(self):
        with pytest.raises(ValueError):
            Question(uid="x", taxonomy_key="t", domain=Domain.HEALTH,
                     qtype=QuestionType.TRUE_FALSE,
                     kind=QuestionKind.POSITIVE, level=1,
                     child_id="c", child_name="c",
                     true_parent_id="p", true_parent_name="p")

    def test_letter_answer(self):
        assert letter_answer("C") is Answer.C

    def test_answer_miss_flags(self):
        assert Answer.IDK.is_miss
        assert Answer.UNPARSEABLE.is_miss
        assert not Answer.YES.is_miss
        assert not Answer.A.is_miss

    def test_dataset_kinds_pair_the_right_negatives(self):
        assert DatasetKind.EASY.question_kinds \
            == (QuestionKind.POSITIVE, QuestionKind.NEGATIVE_EASY)
        assert DatasetKind.HARD.question_kinds \
            == (QuestionKind.POSITIVE, QuestionKind.NEGATIVE_HARD)
        assert DatasetKind.MCQ.question_kinds == (QuestionKind.MCQ,)


class TestTemplates:
    def test_shopping_template_matches_table2(self):
        prompt = true_false_prompt(Domain.SHOPPING, "Pencil",
                                   "Stationery")
        assert prompt == ("Are Pencil products a type of Stationery "
                          "products? answer with (Yes/No/I don't know)")

    def test_language_template_matches_table2(self):
        prompt = true_false_prompt(Domain.LANGUAGE, "Sinitic",
                                   "Sino-Tibetan")
        assert prompt == ("Is Sinitic language a type of Sino-Tibetan "
                          "language? answer with (Yes/No/I don't know)")

    def test_health_template_has_no_wrapper(self):
        prompt = true_false_prompt(Domain.HEALTH, "Acute hepatitis",
                                   "Hepatitis")
        assert prompt == ("Is Acute hepatitis a type of Hepatitis? "
                          "answer with (Yes/No/I don't know)")

    def test_medical_template_mentions_adverse_events(self):
        prompt = true_false_prompt(Domain.MEDICAL, "cardiac AE",
                                   "vascular AE")
        assert "Adverse Events concept" in prompt

    def test_general_template(self):
        prompt = true_false_prompt(Domain.GENERAL, "PaymentComplete",
                                   "Intangible")
        assert "entity type" in prompt
        assert prompt.startswith("Is ")

    def test_paraphrase_variants(self):
        base = true_false_prompt(Domain.HEALTH, "a", "b", variant=0)
        kind = true_false_prompt(Domain.HEALTH, "a", "b", variant=1)
        sort = true_false_prompt(Domain.HEALTH, "a", "b", variant=2)
        assert "a type of" in base
        assert "a kind of" in kind
        assert "a sort of" in sort

    def test_unknown_variant_rejected(self):
        with pytest.raises(PromptError):
            true_false_prompt(Domain.HEALTH, "a", "b", variant=9)

    def test_mcq_template_matches_table3(self):
        prompt = mcq_prompt(Domain.SHOPPING, "Pencil",
                            ("A1", "B2", "C3", "D4"))
        assert prompt.startswith("What is the most appropriate "
                                 "supertype of Pencil product? ")
        assert "A) A1 B) B2 C) C3 D) D4" in prompt

    def test_mcq_adjective_variants(self):
        prompt = mcq_prompt(Domain.HEALTH, "x", ("a", "b", "c", "d"),
                            variant=1)
        assert "most suitable supertype" in prompt

    def test_mcq_requires_four_options(self):
        with pytest.raises(PromptError):
            mcq_prompt(Domain.HEALTH, "x", ("a", "b"))

    def test_render_question_dispatches(self):
        assert "a type of" in render_question(_tf_question())
        assert "supertype" in render_question(_mcq_question())
