"""Unit tests for the taxonomy node/forest data structures."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError, UnknownNodeError
from repro.taxonomy.node import Domain, TaxonomyNode
from repro.taxonomy.taxonomy import Taxonomy


def _by_name(taxonomy, name):
    for node in taxonomy:
        if node.name == name:
            return node
    raise AssertionError(f"no node named {name}")


class TestTaxonomyNode:
    def test_root_flags(self):
        node = TaxonomyNode("n0", "Thing", 0)
        assert node.is_root
        assert node.is_leaf

    def test_child_is_not_root(self):
        node = TaxonomyNode("n1", "Animal", 1, parent_id="n0")
        assert not node.is_root

    def test_node_with_children_is_not_leaf(self):
        node = TaxonomyNode("n0", "Thing", 0, children_ids=["n1"])
        assert not node.is_leaf


class TestDomain:
    def test_all_eight_paper_domains_exist(self):
        assert len(Domain) == 8

    def test_domain_is_string_valued(self):
        assert Domain.SHOPPING.value == "shopping"


class TestNavigation:
    def test_len_counts_all_nodes(self, toy_taxonomy):
        assert len(toy_taxonomy) == 10

    def test_num_trees(self, toy_taxonomy):
        assert toy_taxonomy.num_trees == 2

    def test_num_levels(self, toy_taxonomy):
        assert toy_taxonomy.num_levels == 3

    def test_parent_of_root_is_none(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Electronics")
        assert toy_taxonomy.parent(root.node_id) is None

    def test_parent_of_leaf(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Headphones")
        assert toy_taxonomy.parent(leaf.node_id).name == "Audio"

    def test_children_order_is_insertion(self, toy_taxonomy):
        audio = _by_name(toy_taxonomy, "Audio")
        names = [c.name for c in toy_taxonomy.children(audio.node_id)]
        assert names == ["Headphones", "Speakers", "Earbuds"]

    def test_siblings_exclude_self(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Headphones")
        names = {s.name for s in toy_taxonomy.siblings(leaf.node_id)}
        assert names == {"Speakers", "Earbuds"}

    def test_siblings_of_root_are_other_roots(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Electronics")
        names = {s.name for s in toy_taxonomy.siblings(root.node_id)}
        assert names == {"Home"}

    def test_uncles_are_parent_siblings(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Headphones")
        names = {u.name for u in toy_taxonomy.uncles(leaf.node_id)}
        assert names == {"Video"}

    def test_uncles_of_root_are_empty(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Home")
        assert toy_taxonomy.uncles(root.node_id) == ()

    def test_uncles_of_level1_are_other_roots(self, toy_taxonomy):
        audio = _by_name(toy_taxonomy, "Audio")
        names = {u.name for u in toy_taxonomy.uncles(audio.node_id)}
        assert names == {"Home"}

    def test_ancestors_order_parent_first(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Chairs")
        names = [a.name for a in toy_taxonomy.ancestors(leaf.node_id)]
        assert names == ["Furniture", "Home"]

    def test_root_of(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Monitors")
        assert toy_taxonomy.root_of(leaf.node_id).name == "Electronics"

    def test_root_of_root_is_itself(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Home")
        assert toy_taxonomy.root_of(root.node_id) is root

    def test_nodes_at_level(self, toy_taxonomy):
        names = {n.name for n in toy_taxonomy.nodes_at_level(1)}
        assert names == {"Audio", "Video", "Furniture"}

    def test_nodes_at_absent_level_empty(self, toy_taxonomy):
        assert toy_taxonomy.nodes_at_level(9) == ()

    def test_level_widths(self, toy_taxonomy):
        assert toy_taxonomy.level_widths() == [2, 3, 5]

    def test_leaves(self, toy_taxonomy):
        names = {n.name for n in toy_taxonomy.leaves()}
        assert names == {"Headphones", "Speakers", "Earbuds",
                         "Monitors", "Chairs"}

    def test_edges_count(self, toy_taxonomy):
        assert sum(1 for _ in toy_taxonomy.edges()) == 8

    def test_edges_are_child_parent(self, toy_taxonomy):
        for child, parent in toy_taxonomy.edges():
            assert child.parent_id == parent.node_id

    def test_descendants(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Electronics")
        names = {d.name for d in
                 toy_taxonomy.descendants(root.node_id)}
        assert names == {"Audio", "Video", "Headphones", "Speakers",
                         "Earbuds", "Monitors"}

    def test_is_ancestor_true(self, toy_taxonomy):
        root = _by_name(toy_taxonomy, "Electronics")
        leaf = _by_name(toy_taxonomy, "Earbuds")
        assert toy_taxonomy.is_ancestor(root.node_id, leaf.node_id)

    def test_is_ancestor_false_for_sibling_branch(self, toy_taxonomy):
        home = _by_name(toy_taxonomy, "Home")
        leaf = _by_name(toy_taxonomy, "Earbuds")
        assert not toy_taxonomy.is_ancestor(home.node_id, leaf.node_id)

    def test_is_ancestor_not_reflexive(self, toy_taxonomy):
        leaf = _by_name(toy_taxonomy, "Earbuds")
        assert not toy_taxonomy.is_ancestor(leaf.node_id, leaf.node_id)

    def test_unknown_node_raises(self, toy_taxonomy):
        with pytest.raises(UnknownNodeError):
            toy_taxonomy.node("missing")

    def test_contains(self, toy_taxonomy):
        some_id = next(iter(toy_taxonomy)).node_id
        assert some_id in toy_taxonomy
        assert "missing" not in toy_taxonomy

    def test_empty_name_rejected(self):
        with pytest.raises(TaxonomyError):
            Taxonomy("", Domain.GENERAL, {})
