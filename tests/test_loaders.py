"""Tests for the real-dump loaders (fixture-sized dumps)."""

from __future__ import annotations

import pytest

from repro.errors import TaxonomyError
from repro.loaders.glottolog import parse_languoid_csv
from repro.loaders.google import parse_path_lines
from repro.loaders.ncbi import (build_ncbi_taxonomy, parse_names,
                                parse_nodes)
from repro.loaders.schema_org import parse_types_csv

GOOGLE_LINES = [
    "# Google_Product_Taxonomy_Version: 2021-09-21",
    "Animals & Pet Supplies",
    "Animals & Pet Supplies > Live Animals",
    "Animals & Pet Supplies > Pet Supplies",
    "Animals & Pet Supplies > Pet Supplies > Bird Supplies",
    "Animals & Pet Supplies > Pet Supplies > Cat Supplies",
    "Apparel & Accessories",
    "Apparel & Accessories > Clothing",
]


class TestGoogleLoader:
    def test_shape(self):
        taxonomy = parse_path_lines(GOOGLE_LINES)
        assert taxonomy.num_trees == 2
        assert taxonomy.num_levels == 3
        assert len(taxonomy) == 7

    def test_paths_share_prefixes(self):
        taxonomy = parse_path_lines(GOOGLE_LINES)
        names = {n.name: n for n in taxonomy}
        bird = names["Bird Supplies"]
        assert taxonomy.parent(bird.node_id).name == "Pet Supplies"
        assert taxonomy.root_of(bird.node_id).name \
            == "Animals & Pet Supplies"

    def test_comments_and_blanks_skipped(self):
        taxonomy = parse_path_lines(["# comment", "", "A", "A > B"])
        assert len(taxonomy) == 2

    def test_empty_segment_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_path_lines(["A >  > C"])

    def test_empty_file_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_path_lines(["# only a comment"])

    def test_question_pools_work_on_loaded_taxonomy(self):
        from repro.questions.pools import build_pools
        taxonomy = parse_path_lines(GOOGLE_LINES)
        pools = build_pools("google-real", taxonomy, sample_size=2)
        assert pools.question_levels == [1, 2]


NODES_DMP = "\n".join([
    "1\t|\t1\t|\tno rank\t|",
    "2\t|\t131567\t|\tsuperkingdom\t|",
    "131567\t|\t1\t|\tno rank\t|",
    "1224\t|\t2\t|\tphylum\t|",
    "28211\t|\t1224\t|\tclass\t|",
    "766\t|\t28211\t|\torder\t|",
    "942\t|\t766\t|\tfamily\t|",
    "943\t|\t942\t|\tgenus\t|",
    "944\t|\t943\t|\tspecies\t|",
    "945\t|\t943\t|\tspecies\t|",
])

NAMES_DMP = "\n".join([
    "1\t|\troot\t|\t\t|\tscientific name\t|",
    "2\t|\tBacteria\t|\t\t|\tscientific name\t|",
    "2\t|\teubacteria\t|\t\t|\tgenbank common name\t|",
    "1224\t|\tProteobacteria\t|\t\t|\tscientific name\t|",
    "28211\t|\tAlphaproteobacteria\t|\t\t|\tscientific name\t|",
    "766\t|\tRickettsiales\t|\t\t|\tscientific name\t|",
    "942\t|\tAnaplasmataceae\t|\t\t|\tscientific name\t|",
    "943\t|\tEhrlichia\t|\t\t|\tscientific name\t|",
    "944\t|\tEhrlichia canis\t|\t\t|\tscientific name\t|",
    "945\t|\tEhrlichia muris\t|\t\t|\tscientific name\t|",
])


class TestNcbiLoader:
    def test_parse_nodes(self):
        nodes = parse_nodes(NODES_DMP.splitlines())
        assert nodes["2"] == ("131567", "superkingdom")

    def test_parse_names_keeps_scientific_only(self):
        names = parse_names(NAMES_DMP.splitlines())
        assert names["2"] == "Bacteria"
        assert "eubacteria" not in names.values()

    def test_build_seven_rank_chain(self):
        taxonomy = build_ncbi_taxonomy(
            parse_nodes(NODES_DMP.splitlines()),
            parse_names(NAMES_DMP.splitlines()))
        assert taxonomy.num_levels == 7
        names = {n.name: n for n in taxonomy}
        species = names["Ehrlichia canis"]
        assert taxonomy.parent(species.node_id).name == "Ehrlichia"
        assert taxonomy.root_of(species.node_id).name == "Bacteria"

    def test_no_rank_nodes_are_skipped(self):
        taxonomy = build_ncbi_taxonomy(
            parse_nodes(NODES_DMP.splitlines()),
            parse_names(NAMES_DMP.splitlines()))
        assert "root" not in {n.name for n in taxonomy}

    def test_species_are_siblings(self):
        taxonomy = build_ncbi_taxonomy(
            parse_nodes(NODES_DMP.splitlines()),
            parse_names(NAMES_DMP.splitlines()))
        names = {n.name: n for n in taxonomy}
        siblings = taxonomy.siblings(names["Ehrlichia canis"].node_id)
        assert [s.name for s in siblings] == ["Ehrlichia muris"]

    def test_empty_dump_rejected(self):
        with pytest.raises(TaxonomyError):
            build_ncbi_taxonomy({}, {})

    def test_malformed_row_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_nodes(["justone"])


LANGUOID_CSV = """id,family_id,parent_id,name,level
sino1245,,,Sino-Tibetan,family
sini1245,sino1245,sino1245,Sinitic,family
midd1344,sino1245,sini1245,Middle-Modern Sinitic,family
hakk1236,sino1245,midd1344,Hakka-Chinese,language
hail1247,sino1245,hakk1236,Hailu,dialect
aust1307,,,Austronesian,family
"""


class TestGlottologLoader:
    def test_shape(self):
        taxonomy = parse_languoid_csv(LANGUOID_CSV)
        assert taxonomy.num_trees == 2
        assert taxonomy.num_levels == 5

    def test_example_chain_from_the_paper(self):
        taxonomy = parse_languoid_csv(LANGUOID_CSV)
        names = {n.name: n for n in taxonomy}
        hailu = names["Hailu"]
        chain = [a.name for a in taxonomy.ancestors(hailu.node_id)]
        assert chain == ["Hakka-Chinese", "Middle-Modern Sinitic",
                         "Sinitic", "Sino-Tibetan"]

    def test_truncation_below_max_levels(self):
        taxonomy = parse_languoid_csv(LANGUOID_CSV, max_levels=3)
        assert "Hakka-Chinese" not in {n.name for n in taxonomy}

    def test_missing_columns_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_languoid_csv("id,name\nx,Thing\n")

    def test_empty_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_languoid_csv("id,parent_id,name\n")


TYPES_CSV = """id,label,subTypeOf
https://schema.org/Thing,Thing,
https://schema.org/Action,Action,https://schema.org/Thing
https://schema.org/TradeAction,TradeAction,https://schema.org/Action
https://schema.org/BuyAction,BuyAction,https://schema.org/TradeAction
https://schema.org/CreativeWork,CreativeWork,https://schema.org/Thing
https://schema.org/HowTo,HowTo,"https://schema.org/CreativeWork, https://schema.org/Thing"
"""


class TestSchemaLoader:
    def test_shape(self):
        taxonomy = parse_types_csv(TYPES_CSV)
        assert taxonomy.num_trees == 1
        assert len(taxonomy) == 6

    def test_first_supertype_wins_for_multi_parents(self):
        taxonomy = parse_types_csv(TYPES_CSV)
        names = {n.name: n for n in taxonomy}
        assert taxonomy.parent(names["HowTo"].node_id).name \
            == "CreativeWork"

    def test_levels_follow_subtype_chains(self):
        taxonomy = parse_types_csv(TYPES_CSV)
        names = {n.name: n for n in taxonomy}
        assert names["BuyAction"].level == 3

    def test_missing_columns_rejected(self):
        with pytest.raises(TaxonomyError):
            parse_types_csv("id,label\nx,y\n")
