"""Tests for the ASCII figure renderers."""

from __future__ import annotations

import pytest

from repro.figures.ascii import bar_chart, line_chart, radar_table


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart({"ebay": 100.0, "ncbi": 25.0}, title="T")
        assert text.splitlines()[0] == "T"
        assert "ebay" in text
        assert "100" in text

    def test_largest_bar_is_full_width(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        a_line = next(line for line in text.splitlines()
                      if line.startswith("a"))
        assert "#" * 10 in a_line

    def test_log_scale_compresses_ratio(self):
        linear = bar_chart({"a": 1_000_000.0, "b": 1_000.0}, width=20)
        logged = bar_chart({"a": 1_000_000.0, "b": 1_000.0}, width=20,
                           log_scale=True)
        count = lambda text, label: next(  # noqa: E731
            line for line in text.splitlines()
            if line.startswith(label)).count("#")
        assert count(linear, "b") <= 1
        assert count(logged, "b") >= 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})


class TestLineChart:
    def test_axis_and_legend(self):
        text = line_chart({"GPT-4": [0.9, 0.7, 0.5]},
                          ["l1", "l2", "l3"], title="F3")
        assert "F3" in text
        assert "o=GPT-4" in text
        assert "l2" in text

    def test_monotone_series_descends_on_grid(self):
        text = line_chart({"m": [1.0, 0.0]}, ["a", "b"], height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        first_marker_row = next(i for i, row in enumerate(rows)
                                if "o" in row)
        last_marker_row = max(i for i, row in enumerate(rows)
                              if "o" in row)
        assert first_marker_row < last_marker_row

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart({"a": [0.2, 0.4], "b": [0.9, 0.8]},
                          ["x", "y"])
        assert "o=a" in text
        assert "x=b" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [0.1]}, ["x", "y"])

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [0.1, 0.2]}, ["x", "y"], y_min=1.0,
                       y_max=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({}, [])


class TestRadarTable:
    def test_layout(self):
        text = radar_table(("ebay", "ncbi"),
                           {"zero-shot": [0.9, 0.5],
                            "few-shot": [0.91, 0.52]}, title="F4")
        lines = text.splitlines()
        assert lines[0] == "F4"
        assert "ebay" in lines[1]
        assert "0.900" in text

    def test_spoke_mismatch_rejected(self):
        with pytest.raises(ValueError):
            radar_table(("a",), {"s": [0.1, 0.2]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            radar_table(("a",), {})
