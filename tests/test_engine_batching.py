"""Tests for the batched engine core: batching, coalescing, AIMD,
backend pools, and the bit-identity invariant under all of them."""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.batching import (AdaptiveLimiter, BatchingModel,
                                   CoalescingModel, close_model_stack)
from repro.engine.cache import CachedModel
from repro.engine.config import EngineConfig, RetryPolicy
from repro.engine.middleware import FaultInjectingModel, RetryingModel
from repro.engine.pool import BackendPool
from repro.engine.scheduler import EvaluationEngine
from repro.engine.telemetry import EngineStats, Telemetry
from repro.errors import ModelError, ModelTransientError
from repro.llm.base import (BaseChatModel, StaticResponder,
                            call_generate_batch,
                            supports_generate_batch)
from repro.obs.cost import CostMeter
from repro.obs.export import format_prometheus
from repro.obs.history import HistoryEntry

FAST_RETRY = RetryPolicy(retries=3, base_delay=0.0, jitter=0.0)


class BatchEcho(BaseChatModel):
    """Deterministic backend that records how batches arrive."""

    def __init__(self, name: str = "echo", latency_s: float = 0.0):
        super().__init__(name)
        self.latency_s = latency_s
        self.batch_sizes: list[int] = []
        self._lock = threading.Lock()

    def _respond(self, prompt: str) -> str:
        if self.latency_s:
            time.sleep(self.latency_s)
        return f"ans:{prompt}"

    def _respond_batch(self, prompts: list[str]) -> list[str]:
        with self._lock:
            self.batch_sizes.append(len(prompts))
        if self.latency_s:
            time.sleep(self.latency_s)
        return [f"ans:{prompt}" for prompt in prompts]


# ----------------------------------------------------------------------
# Protocol negotiation
# ----------------------------------------------------------------------
class TestProtocolNegotiation:
    def test_base_model_supports_batch(self):
        model = BatchEcho()
        assert supports_generate_batch(model)
        assert model.generate_batch(["a", "b"]) == ["ans:a", "ans:b"]
        assert model.prompts_served == 2

    def test_static_responder_falls_back_to_loop(self):
        model = StaticResponder("fixed", "yes")
        assert not supports_generate_batch(model)
        assert call_generate_batch(model, ["a", "b"]) == ["yes", "yes"]

    def test_batch_length_mismatch_rejected(self):
        class Lying(BaseChatModel):
            def _respond(self, prompt):
                return "x"

            def _respond_batch(self, prompts):
                return ["x"]        # wrong length on purpose

        with pytest.raises(ValueError, match="1 responses for 2"):
            call_generate_batch(Lying("liar"), ["a", "b"])

    def test_empty_prompt_rejected_in_batch(self):
        with pytest.raises(ValueError, match="non-empty"):
            BatchEcho().generate_batch(["ok", "  "])


# ----------------------------------------------------------------------
# AdaptiveLimiter
# ----------------------------------------------------------------------
class TestAdaptiveLimiter:
    def test_additive_increase_multiplicative_decrease(self):
        limiter = AdaptiveLimiter(initial=4, max_limit=16)
        for _ in range(8):
            limiter.acquire()
            limiter.release(success=True)
        grown = limiter.limit
        assert grown > 4
        assert limiter.high_water == grown
        limiter.acquire()
        limiter.release(success=False)
        assert limiter.limit <= grown // 2 + 1
        assert limiter.backoffs == 1
        # High water survives the backoff.
        assert limiter.high_water == grown

    def test_never_below_min_limit(self):
        limiter = AdaptiveLimiter(initial=2, min_limit=1)
        for _ in range(10):
            limiter.acquire()
            limiter.release(success=False)
        assert limiter.limit == 1

    def test_acquire_blocks_at_window(self):
        limiter = AdaptiveLimiter(initial=1, min_limit=1)
        limiter.acquire()
        acquired = threading.Event()

        def second() -> None:
            limiter.acquire()
            acquired.set()

        thread = threading.Thread(target=second, daemon=True)
        thread.start()
        assert not acquired.wait(0.05)
        limiter.release(success=True)
        assert acquired.wait(1.0)
        limiter.release(success=True)
        thread.join(timeout=1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(initial=0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(backoff=1.5)


# ----------------------------------------------------------------------
# BatchingModel
# ----------------------------------------------------------------------
class TestBatchingModel:
    def test_single_call_flushes_on_linger(self):
        model = BatchEcho()
        with BatchingModel(model, batch_size=8,
                           linger_s=0.001) as batcher:
            assert batcher.generate("solo") == "ans:solo"
        assert model.batch_sizes == [1]

    def test_concurrent_calls_form_batches(self):
        model = BatchEcho(latency_s=0.002)
        telemetry = Telemetry()
        with BatchingModel(model, batch_size=8, linger_s=0.01,
                           telemetry=telemetry) as batcher:
            results: dict[int, str] = {}

            def call(i: int) -> None:
                results[i] = batcher.generate(f"p{i}")

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(16)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=5.0)
        assert results == {i: f"ans:p{i}" for i in range(16)}
        assert sum(model.batch_sizes) == 16
        assert max(model.batch_sizes) <= 8
        assert max(model.batch_sizes) > 1   # batching actually happened
        assert (telemetry.snapshot().batches
                == len(model.batch_sizes))

    def test_batch_failure_fails_every_member_once(self):
        class Failing(BaseChatModel):
            def __init__(self):
                super().__init__("down")
                self.batch_calls = 0

            def _respond(self, prompt):
                raise AssertionError("unreachable")

            def _respond_batch(self, prompts):
                self.batch_calls += 1
                raise ModelTransientError("synthetic outage")

        model = Failing()
        with BatchingModel(model, batch_size=4,
                           linger_s=0.01) as batcher:
            errors: list[BaseException] = []
            lock = threading.Lock()

            def call(i: int) -> None:
                try:
                    batcher.generate(f"p{i}")
                except BaseException as exc:
                    with lock:
                        errors.append(exc)

            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=5.0)
        assert len(errors) == 4
        assert all(isinstance(exc, ModelTransientError)
                   for exc in errors)
        assert model.batch_calls == 1   # one dispatch, four waiters

    def test_adaptive_limiter_backs_off_on_transient(self):
        class FlakyBatch(BatchEcho):
            def __init__(self):
                super().__init__("flaky")
                self.fail_next = True

            def _respond_batch(self, prompts):
                if self.fail_next:
                    self.fail_next = False
                    raise ModelTransientError("blip")
                return super()._respond_batch(prompts)

        limiter = AdaptiveLimiter(initial=4)
        model = FlakyBatch()
        with BatchingModel(model, batch_size=2, linger_s=0.001,
                           limiter=limiter) as batcher:
            with pytest.raises(ModelTransientError):
                batcher.generate("a")
            assert batcher.generate("b") == "ans:b"
        assert limiter.backoffs == 1
        assert limiter.limit < 4

    def test_close_fails_pending_and_rejects_new_calls(self):
        model = BatchEcho()
        batcher = BatchingModel(model, batch_size=4, linger_s=60.0)
        errors: list[BaseException] = []

        def call() -> None:
            try:
                batcher.generate("parked")
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=call, daemon=True)
        thread.start()
        time.sleep(0.05)            # let the prompt park on the loop
        batcher.close()
        thread.join(timeout=5.0)
        assert len(errors) == 1
        assert isinstance(errors[0], ModelError)
        with pytest.raises(ModelError, match="closed"):
            batcher.generate("late")
        batcher.close()             # idempotent

    def test_async_backend_awaited_on_loop(self):
        class AsyncBackend(BaseChatModel):
            def __init__(self):
                super().__init__("native")
                self.async_batches = 0

            def _respond(self, prompt):
                raise AssertionError("sync path must not be used")

            async def agenerate_batch(self, prompts):
                self.async_batches += 1
                return [f"async:{prompt}" for prompt in prompts]

        model = AsyncBackend()
        with BatchingModel(model, batch_size=4,
                           linger_s=0.001) as batcher:
            assert batcher.generate("q") == "async:q"
        assert model.async_batches == 1


# ----------------------------------------------------------------------
# CoalescingModel
# ----------------------------------------------------------------------
class TestCoalescingModel:
    def test_identical_inflight_prompts_share_one_call(self):
        model = BatchEcho(latency_s=0.05)
        telemetry = Telemetry()
        coalescer = CoalescingModel(model, telemetry=telemetry)
        results: list[str] = []
        lock = threading.Lock()

        def call() -> None:
            response = coalescer.generate("same")
            with lock:
                results.append(response)

        threads = [threading.Thread(target=call) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert results == ["ans:same"] * 8
        assert model.prompts_served == 1
        assert telemetry.snapshot().coalesced == 7

    def test_distinct_prompts_do_not_coalesce(self):
        model = BatchEcho()
        coalescer = CoalescingModel(model)
        assert coalescer.generate("a") == "ans:a"
        assert coalescer.generate("b") == "ans:b"
        assert model.prompts_served == 2

    def test_sequential_repeats_do_not_coalesce(self):
        # The coalescer only helps *in-flight* duplicates; completed
        # calls are the response cache's domain.
        model = BatchEcho()
        coalescer = CoalescingModel(model)
        coalescer.generate("same")
        coalescer.generate("same")
        assert model.prompts_served == 2

    def test_leader_failure_propagates_to_followers(self):
        release = threading.Event()

        class Blocking(BaseChatModel):
            def _respond(self, prompt):
                release.wait(5.0)
                raise ModelError("hard failure")

        coalescer = CoalescingModel(Blocking("down"))
        errors: list[BaseException] = []
        lock = threading.Lock()

        def call() -> None:
            try:
                coalescer.generate("same")
            except BaseException as exc:
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=call) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(errors) == 3
        assert all(isinstance(exc, ModelError) for exc in errors)


# ----------------------------------------------------------------------
# BackendPool
# ----------------------------------------------------------------------
class FailingBackend:
    name = "GPT-4"

    def __init__(self, error=ModelTransientError):
        self.calls = 0
        self.error = error

    def generate(self, prompt: str) -> str:
        self.calls += 1
        raise self.error("down")


class TestBackendPool:
    def test_presents_primary_name(self):
        pool = BackendPool([StaticResponder("GPT-4", "yes"),
                            StaticResponder("replica", "yes")])
        assert pool.name == "GPT-4"
        assert pool.generate("q") == "yes"

    def test_fallback_on_failure(self):
        primary = FailingBackend()
        pool = BackendPool([primary, StaticResponder("GPT-4", "ok")])
        assert pool.generate("q") == "ok"
        assert primary.calls == 1

    def test_all_backends_failing_raises(self):
        pool = BackendPool([FailingBackend(), FailingBackend()])
        with pytest.raises(ModelError, match="every backend failed"):
            pool.generate("q")

    def test_health_cooldown_skips_failing_backend(self):
        clock_now = [0.0]
        primary = FailingBackend()
        pool = BackendPool([primary, StaticResponder("GPT-4", "ok")],
                           max_failures=2, cooldown_s=30.0,
                           clock=lambda: clock_now[0])
        pool.generate("a")
        pool.generate("b")
        assert primary.calls == 2       # two strikes -> cooldown
        pool.generate("c")
        assert primary.calls == 2       # sat out while cooling down
        clock_now[0] = 31.0
        pool.generate("d")
        assert primary.calls == 3       # probed again after cooldown

    def test_success_resets_consecutive_failures(self):
        class Recovering:
            name = "GPT-4"

            def __init__(self):
                self.calls = 0

            def generate(self, prompt: str) -> str:
                self.calls += 1
                if self.calls % 2 == 1:
                    raise ModelTransientError("blip")
                return "ok"

        backend = Recovering()
        pool = BackendPool([backend, StaticResponder("GPT-4", "ok")],
                           max_failures=2)
        for _ in range(6):      # fail, fall back, succeed, repeat
            assert pool.generate("q") == "ok"
        assert backend.calls == 6   # never benched: streak never hits 2

    def test_hedge_fires_on_slow_primary(self):
        class Slow:
            name = "GPT-4"

            def generate(self, prompt: str) -> str:
                time.sleep(0.5)
                return "ok"

        telemetry = Telemetry()
        pool = BackendPool([Slow(), StaticResponder("GPT-4", "ok")],
                           hedge_delay_s=0.01, telemetry=telemetry)
        try:
            started = time.perf_counter()
            assert pool.generate("q") == "ok"
            elapsed = time.perf_counter() - started
        finally:
            pool.close()
        assert elapsed < 0.4            # won by the hedge, not the primary
        assert telemetry.snapshot().hedged == 1

    def test_hedged_failure_falls_through(self):
        telemetry = Telemetry()
        pool = BackendPool(
            [FailingBackend(), StaticResponder("GPT-4", "ok")],
            hedge_delay_s=5.0, telemetry=telemetry)
        try:
            assert pool.generate("q") == "ok"
        finally:
            pool.close()
        # The primary failed fast, so the fallback launched without
        # waiting out the hedge delay (and no hedge was recorded).
        assert telemetry.snapshot().hedged == 0

    def test_generate_batch_delegates_with_fallback(self):
        class FailingBatch:
            name = "GPT-4"

            def generate(self, prompt: str) -> str:
                raise ModelTransientError("down")

        replica = BatchEcho(name="GPT-4")
        pool = BackendPool([FailingBatch(), replica])
        assert pool.generate_batch(["a", "b"]) == ["ans:a", "ans:b"]
        assert replica.batch_sizes == [2]

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendPool([])
        with pytest.raises(ValueError):
            BackendPool([StaticResponder("m", "x")], hedge_delay_s=-1)


# ----------------------------------------------------------------------
# Stack composition and engine integration
# ----------------------------------------------------------------------
class TestStackComposition:
    def test_full_batched_stack_composes_in_order(self):
        engine = EvaluationEngine(
            EngineConfig(max_workers=2, retry=FAST_RETRY,
                         batch_size=4, coalesce=True, adaptive=True))
        wrapped = engine.wrap(BatchEcho())
        try:
            # Documented order:
            # coalesce(cache(retry(cost(batch(count(model)))))).
            assert isinstance(wrapped, CoalescingModel)
            assert isinstance(wrapped.inner, CachedModel)
            assert isinstance(wrapped.inner.inner, RetryingModel)
            assert isinstance(wrapped.inner.inner.inner, CostMeter)
            batcher = wrapped.inner.inner.inner.inner
            assert isinstance(batcher, BatchingModel)
            assert isinstance(batcher.limiter, AdaptiveLimiter)
            assert wrapped.generate("hi") == "ans:hi"
        finally:
            close_model_stack(wrapped)

    def test_defaults_add_no_batching_layers(self):
        engine = EvaluationEngine(EngineConfig(max_workers=2,
                                               retry=FAST_RETRY))
        wrapped = engine.wrap(BatchEcho())
        assert isinstance(wrapped, CachedModel)
        assert isinstance(wrapped.inner, RetryingModel)

    def test_counting_model_counts_batch_per_prompt(self):
        engine = EvaluationEngine(
            EngineConfig(max_workers=8, batch_size=4, cache=False,
                         retry=None))
        model = BatchEcho(latency_s=0.002)
        results = engine.run(model, [f"p{i}" for i in range(16)],
                             lambda m, item: m.generate(item))
        assert results == [f"ans:p{i}" for i in range(16)]
        stats = engine.stats()
        assert stats.calls == 16        # calls = prompts, not batches
        assert stats.batches == len(model.batch_sizes)
        assert sum(model.batch_sizes) == 16


class TestEngineParity:
    ITEMS = [f"q{i % 5}" for i in range(40)]

    def sequential(self, items):
        model = BatchEcho()
        return [f"ans:{item}" for item in items]

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    @pytest.mark.parametrize("coalesce", [False, True])
    def test_batched_engine_matches_sequential(self, workers,
                                               batch_size, coalesce):
        engine = EvaluationEngine(
            EngineConfig(max_workers=workers, batch_size=batch_size,
                         batch_linger_s=0.001, coalesce=coalesce,
                         cache=False, retry=None))
        seen: list[int] = []
        lock = threading.Lock()

        def on_result(index: int, result: str) -> None:
            with lock:
                seen.append(index)

        results = engine.run(BatchEcho(), self.ITEMS,
                             lambda m, item: m.generate(item),
                             on_result=on_result)
        assert results == self.sequential(self.ITEMS)
        assert sorted(seen) == list(range(len(self.ITEMS)))

    def test_coalesce_plus_cache_serves_unique_prompts_once(self):
        engine = EvaluationEngine(
            EngineConfig(max_workers=8, batch_size=4,
                         batch_linger_s=0.001, coalesce=True,
                         cache=True, retry=None))
        model = BatchEcho(latency_s=0.002)
        items = [f"q{i % 7}" for i in range(70)]
        results = engine.run(model, items,
                             lambda m, item: m.generate(item))
        assert results == [f"ans:{item}" for item in items]
        # The zero-extra-calls invariant: in-flight duplicates
        # coalesce, finished duplicates hit the cache — the backend
        # sees each unique prompt exactly once.
        assert engine.stats().calls == 7
        assert model.prompts_served == 7

    @pytest.mark.parametrize("seed", [0, 7])
    def test_parity_under_injected_faults(self, seed):
        items = [f"q{i % 6}" for i in range(30)]
        engine = EvaluationEngine(
            EngineConfig(max_workers=8, batch_size=3,
                         batch_linger_s=0.001, coalesce=True,
                         cache=False, retry=FAST_RETRY))
        flaky = FaultInjectingModel(BatchEcho(), seed=seed,
                                    failure_rate=0.7,
                                    max_consecutive=2)
        results = engine.run(flaky, items,
                             lambda m, item: m.generate(item))
        assert results == [f"ans:{item}" for item in items]
        assert flaky.faults_injected > 0

    def test_hedged_pool_inside_engine_is_bit_identical(self):
        replicas = [BatchEcho(name="GPT-4"),
                    BatchEcho(name="GPT-4", latency_s=0.001)]
        pool = BackendPool(replicas, hedge_delay_s=0.005)
        engine = EvaluationEngine(
            EngineConfig(max_workers=8, batch_size=4,
                         batch_linger_s=0.001, coalesce=True,
                         cache=False, retry=None))
        try:
            results = engine.run(pool, self.ITEMS,
                                 lambda m, item: m.generate(item))
        finally:
            pool.close()
        assert results == self.sequential(self.ITEMS)

    @settings(deadline=None, max_examples=25)
    @given(
        items=st.lists(st.text(alphabet="abcd", min_size=1,
                               max_size=3), min_size=1, max_size=32),
        batch_size=st.integers(min_value=1, max_value=5),
        workers=st.integers(min_value=1, max_value=8),
    )
    def test_property_batched_coalesced_identical_to_sequential(
            self, items, batch_size, workers):
        """For arbitrary duplicate densities, batch sizes and worker
        counts, the batched+coalesced engine is indistinguishable from
        the sequential loop, and ``on_result`` fires exactly once per
        index."""
        engine = EvaluationEngine(
            EngineConfig(max_workers=workers, batch_size=batch_size,
                         batch_linger_s=0.001, coalesce=True,
                         cache=False, retry=None))
        seen: list[int] = []
        lock = threading.Lock()

        def on_result(index: int, result: str) -> None:
            with lock:
                seen.append(index)

        results = engine.run(BatchEcho(), items,
                             lambda m, item: m.generate(item),
                             on_result=on_result)
        assert results == [f"ans:{item}" for item in items]
        assert sorted(seen) == list(range(len(items)))


# ----------------------------------------------------------------------
# Stats, history and exporter compatibility
# ----------------------------------------------------------------------
class TestStatsCompatibility:
    OLD_PAYLOAD = {
        "records": 10, "calls": 8, "retries": 1, "faults": 1,
        "timeouts": 0, "cache_hits": 2, "cache_misses": 8,
        "wall_time_s": 1.5, "busy_time_s": 4.0, "workers": 4,
    }

    def test_old_run_finished_payload_decodes(self):
        stats = EngineStats.from_dict(self.OLD_PAYLOAD)
        assert stats.batches == 0
        assert stats.coalesced == 0
        assert stats.hedged == 0
        assert stats.adaptive_high_water == 0

    def test_roundtrip_preserves_new_fields(self):
        stats = EngineStats.from_dict(self.OLD_PAYLOAD)
        enriched = EngineStats.from_dict(
            {**stats.to_dict(), "batches": 3, "coalesced": 5,
             "hedged": 1, "adaptive_high_water": 12})
        assert enriched.batches == 3
        assert enriched.coalesced == 5
        assert enriched.hedged == 1
        assert enriched.adaptive_high_water == 12
        assert (EngineStats.from_dict(enriched.to_dict())
                == enriched)

    def test_as_row_surfaces_new_counters(self):
        stats = EngineStats.from_dict(
            {**self.OLD_PAYLOAD, "batches": 3, "coalesced": 5,
             "hedged": 1, "adaptive_high_water": 12})
        row = stats.as_row()
        assert row["batches"] == 3
        assert row["coalesced"] == 5
        assert row["hedged"] == 1
        assert row["adaptive_hw"] == 12

    def test_old_history_entry_decodes(self):
        entry = HistoryEntry.from_dict({
            "run_id": "r1", "finished_at": 1.0, "cells": 2,
            "questions": 100, "accuracy": 0.9,
        })
        assert entry.batches == 0
        assert entry.coalesced == 0
        assert entry.hedged == 0

    def test_history_entry_roundtrips_new_counters(self):
        entry = HistoryEntry.from_dict({
            "run_id": "r1", "finished_at": 1.0, "cells": 2,
            "questions": 100, "accuracy": 0.9, "batches": 4,
            "coalesced": 9, "hedged": 2,
        })
        payload = entry.to_dict()
        assert payload["batches"] == 4
        assert payload["coalesced"] == 9
        assert payload["hedged"] == 2
        assert HistoryEntry.from_dict(payload) == entry

    def test_history_entry_folds_stats_counters(self):
        from repro.core.metrics import Metrics
        from repro.obs.history import entry_from_result
        stats = EngineStats.from_dict(
            {**self.OLD_PAYLOAD, "batches": 3, "coalesced": 5,
             "hedged": 1})
        entry = entry_from_result(
            "r1", "hard",
            {"cell": Metrics(accuracy=0.9, miss_rate=0.0, n=10)},
            stats=stats)
        assert entry.batches == 3
        assert entry.coalesced == 5
        assert entry.hedged == 1

    def test_prometheus_exports_new_counters(self):
        engine = EvaluationEngine(
            EngineConfig(max_workers=8, batch_size=4,
                         batch_linger_s=0.001, coalesce=True,
                         cache=False, retry=None, adaptive=True))
        engine.run(BatchEcho(latency_s=0.002),
                   [f"q{i % 3}" for i in range(24)],
                   lambda m, item: m.generate(item))
        text = format_prometheus(engine.telemetry.registry)
        assert "repro_engine_batches_total" in text
        assert "repro_engine_coalesced_total" in text
        assert "repro_engine_hedged_total" in text
        assert "repro_engine_adaptive_limit_high_water" in text
