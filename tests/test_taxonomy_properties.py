"""Property-based tests on taxonomy invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taxonomy.builder import TaxonomyBuilder
from repro.taxonomy.io import taxonomy_from_dict, taxonomy_to_dict
from repro.taxonomy.node import Domain
from repro.taxonomy.validate import collect_problems


@st.composite
def random_taxonomies(draw):
    """Random valid forests built through the builder."""
    builder = TaxonomyBuilder("prop", draw(st.sampled_from(list(Domain))))
    root_count = draw(st.integers(min_value=1, max_value=4))
    ids = [builder.add_root(f"Root{i}") for i in range(root_count)]
    extra = draw(st.integers(min_value=0, max_value=40))
    for serial in range(extra):
        parent_index = draw(st.integers(min_value=0,
                                        max_value=len(ids) - 1))
        ids.append(builder.add_child(ids[parent_index],
                                     f"Node{serial}"))
    return builder.build()


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_builder_output_always_validates(taxonomy):
    assert collect_problems(taxonomy) == []


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_level_widths_sum_to_size(taxonomy):
    assert sum(taxonomy.level_widths()) == len(taxonomy)


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_every_non_root_has_its_parent_one_level_up(taxonomy):
    for child, parent in taxonomy.edges():
        assert child.level == parent.level + 1


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_ancestor_chain_ends_at_a_root(taxonomy):
    for node in taxonomy:
        chain = taxonomy.ancestors(node.node_id)
        if node.is_root:
            assert chain == ()
        else:
            assert chain[-1].is_root
            assert len(chain) == node.level


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_siblings_relation_is_symmetric(taxonomy):
    for node in taxonomy:
        for sibling in taxonomy.siblings(node.node_id):
            back = {s.node_id
                    for s in taxonomy.siblings(sibling.node_id)}
            assert node.node_id in back


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_uncles_live_at_parent_level(taxonomy):
    for node in taxonomy:
        for uncle in taxonomy.uncles(node.node_id):
            assert uncle.level == node.level - 1
            assert uncle.node_id != node.parent_id


@settings(max_examples=60, deadline=None)
@given(random_taxonomies())
def test_descendant_of_root_union_is_whole_tree(taxonomy):
    covered = set()
    for root in taxonomy.roots:
        covered.add(root.node_id)
        covered.update(d.node_id
                       for d in taxonomy.descendants(root.node_id))
    assert covered == set(taxonomy.node_ids)


@settings(max_examples=40, deadline=None)
@given(random_taxonomies())
def test_json_round_trip_is_lossless(taxonomy):
    rebuilt = taxonomy_from_dict(taxonomy_to_dict(taxonomy))
    assert {n.node_id: (n.name, n.level, n.parent_id)
            for n in rebuilt} \
        == {n.node_id: (n.name, n.level, n.parent_id)
            for n in taxonomy}


@settings(max_examples=40, deadline=None)
@given(random_taxonomies())
def test_is_ancestor_agrees_with_ancestor_chain(taxonomy):
    for node in taxonomy:
        chain = {a.node_id for a in taxonomy.ancestors(node.node_id)}
        for other in taxonomy:
            assert taxonomy.is_ancestor(other.node_id, node.node_id) \
                == (other.node_id in chain)
