"""Setuptools entry point.

Kept as a setup.py (rather than PEP 517 metadata only) so that
``pip install -e .`` works in offline environments without the
``wheel`` package: pip falls back to the legacy ``setup.py develop``
path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("TaxoGlimpse reproduction: benchmarking LLMs as "
                 "taxonomy replacements (VLDB 2024)"),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
