"""Ablation — template paraphrase sensitivity (paper Section 2.2).

The paper reports that slight paraphrases ("a kind of", "a sort of";
"suitable", "proper") did not change the results and publishes the
variant runs in its repository.  This bench re-runs one model over the
three True/False variants and asserts the spread stays small.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import default_pools


def test_template_variants_are_equivalent(benchmark, report, config):
    pool = default_pools(
        "google", sample_size=config.sample_size).total_pool(
        DatasetKind.HARD)
    model = get_model("GPT-4")

    def run():
        rows = []
        for variant, wording in enumerate(
                ("a type of", "a kind of", "a sort of")):
            runner = EvaluationRunner(variant=variant)
            metrics = runner.evaluate(model, pool).metrics
            rows.append({
                "variant": wording,
                "accuracy": round(metrics.accuracy, 3),
                "miss_rate": round(metrics.miss_rate, 3),
            })
        return rows

    rows = once(benchmark, run)
    accuracies = [row["accuracy"] for row in rows]
    assert max(accuracies) - min(accuracies) < 0.05
    report(format_rows(
        rows, title="Ablation: template paraphrase variants (GPT-4, "
        "Google, hard)"))
