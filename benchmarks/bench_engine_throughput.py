"""Bench ENG — execution-engine throughput (sequential vs. workers).

Drives the full prompt->generate->parse loop against a backend with a
deterministic per-call latency (simulating a real endpoint's network
round trip, where the GIL is released), sequential and at 2/4/8
workers, then once more against a warm cache.  Reports wall time,
speedup over sequential, and the engine's own telemetry; the warm
rerun must issue **zero** model calls.

The final fan-out pass runs under a recording tracer and its Chrome
``trace_event`` JSON is written to ``REPRO_TRACE_ARTIFACT`` (default
``benchmarks/.artifacts/engine_throughput_trace.json``) — CI uploads
it so a regression's worker interleaving can be eyeballed in
chrome://tracing without re-running anything.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EvaluationEngine
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import Tracer, chrome_trace
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools

WORKER_COUNTS = (2, 4, 8)

#: Where the traced pass's Chrome trace JSON lands (CI artifact).
TRACE_ARTIFACT_ENV = "REPRO_TRACE_ARTIFACT"
DEFAULT_TRACE_ARTIFACT = (Path(__file__).resolve().parent
                          / ".artifacts"
                          / "engine_throughput_trace.json")


class LatencySimulatingModel(BaseChatModel):
    """A ChatModel that answers like GPT-4 after a fixed sleep.

    ``time.sleep`` releases the GIL, so this reproduces the I/O-bound
    profile of a real endpoint: worker threads overlap their waits and
    throughput scales with the pool size.
    """

    def __init__(self, latency_s: float = 0.005):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)

    def _respond_batch(self, prompts) -> list[str]:
        # One round trip per *batch*: the latency is paid once, each
        # prompt adds only a marginal service cost.
        time.sleep(self.latency_s + 0.0002 * len(prompts))
        return [self._inner.generate(prompt) for prompt in prompts]


def _measure(sample_size: int = 15,
             latency_s: float = 0.005) -> list[dict[str, object]]:
    """Wall-time one pool sequentially, per worker count, then warm."""
    pool = build_pools("ebay", sample_size=sample_size).total_pool(
        DatasetKind.HARD)
    rows: list[dict[str, object]] = []

    # Warm the oracle's lazy indexes so the one-time build cost does
    # not land in (and flatter) the sequential measurement.
    EvaluationRunner().evaluate(LatencySimulatingModel(0.0), pool)

    model = LatencySimulatingModel(latency_s)
    started = time.perf_counter()
    EvaluationRunner().evaluate(model, pool)
    sequential_s = time.perf_counter() - started
    rows.append({"mode": "sequential", "n": len(pool),
                 "wall_s": f"{sequential_s:.3f}", "speedup": "1.0x",
                 "calls": model.prompts_served})

    for workers in WORKER_COUNTS:
        model = LatencySimulatingModel(latency_s)
        engine = EvaluationEngine(
            EngineConfig(max_workers=workers, cache=False))
        started = time.perf_counter()
        EvaluationRunner(engine=engine).evaluate(model, pool)
        elapsed = time.perf_counter() - started
        rows.append({"mode": f"{workers} workers", "n": len(pool),
                     "wall_s": f"{elapsed:.3f}",
                     "speedup": f"{sequential_s / elapsed:.1f}x",
                     "calls": engine.stats().calls})

    # Batched: same 8 workers, but concurrent prompts ride shared
    # generate_batch round trips instead of one sleep each.
    model = LatencySimulatingModel(latency_s)
    engine = EvaluationEngine(
        EngineConfig(max_workers=8, batch_size=8, cache=False))
    started = time.perf_counter()
    EvaluationRunner(engine=engine).evaluate(model, pool)
    elapsed = time.perf_counter() - started
    rows.append({"mode": "8 workers, batch=8", "n": len(pool),
                 "wall_s": f"{elapsed:.3f}",
                 "speedup": f"{sequential_s / elapsed:.1f}x",
                 "calls": engine.stats().calls})

    # Warm-cache rerun: same engine twice, second pass is free.
    model = LatencySimulatingModel(latency_s)
    engine = EvaluationEngine(EngineConfig(max_workers=8))
    runner = EvaluationRunner(engine=engine)
    runner.evaluate(model, pool)
    cold_calls = engine.stats().calls
    started = time.perf_counter()
    runner.evaluate(model, pool)
    elapsed = time.perf_counter() - started
    warm_calls = engine.stats().calls - cold_calls
    rows.append({"mode": "warm cache", "n": len(pool),
                 "wall_s": f"{elapsed:.3f}",
                 "speedup": f"{sequential_s / max(elapsed, 1e-9):.1f}x",
                 "calls": warm_calls})

    _write_trace_artifact(pool, latency_s)
    return rows


def _write_trace_artifact(pool, latency_s: float) -> Path:
    """One traced fan-out pass, exported as Chrome trace JSON."""
    tracer = Tracer()
    engine = EvaluationEngine(
        EngineConfig(max_workers=4, cache=False), tracer=tracer)
    EvaluationRunner(engine=engine).evaluate(
        LatencySimulatingModel(latency_s), pool)
    target = Path(os.environ.get(TRACE_ARTIFACT_ENV,
                                 DEFAULT_TRACE_ARTIFACT))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(chrome_trace(tracer.spans()), indent=1) + "\n",
        encoding="utf-8")
    return target


def _speedup(rows: list[dict[str, object]], mode: str) -> float:
    row = next(row for row in rows if row["mode"] == mode)
    return float(str(row["speedup"]).rstrip("x"))


def test_engine_throughput(benchmark, report):
    rows = once(benchmark, _measure)
    # An I/O-bound workload must scale: >= 3x at 8 workers.
    assert _speedup(rows, "8 workers") >= 3.0
    # A warm rerun is served entirely from the cache.
    warm = next(row for row in rows if row["mode"] == "warm cache")
    assert warm["calls"] == 0
    # The traced pass exported a non-empty Chrome trace.
    artifact = Path(os.environ.get(TRACE_ARTIFACT_ENV,
                                   DEFAULT_TRACE_ARTIFACT))
    trace = json.loads(artifact.read_text(encoding="utf-8"))
    assert trace["traceEvents"]
    report(format_rows(
        rows, title="Engine throughput (5 ms simulated latency)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    print(format_rows(_measure(sample_size=6, latency_s=0.003),
                      title="Engine throughput smoke"))
