"""Bench DIST — sharded-run scaling and the determinism contract.

Runs the same request twice against a backend with a deterministic
per-call latency (the regime ``--shards`` exists for: real, slow
endpoints) — once single-process, once as 4 shards across 4 worker
processes — and gates the two promises ``repro.dist`` makes:

* **exact equality** — the merged run's ``record`` / ``cell-started``
  / ``cell-finished`` ledger lines are byte-identical to the
  single-process run's, and every cell's metrics match exactly.
  Gated unconditionally, at any core count.
* **scaling** — the sharded run is >= 2x faster end to end (plan +
  fork + evaluate + merge) at 4 shards.  Gated only on machines with
  at least 4 cores; the equality gate still runs elsewhere.

The merge also stamps the shard fan-out into ``obs.history``, which
this bench asserts so dashboards can tell sharded entries apart.

Run standalone for a seconds-scale smoke (used by ``scripts/check.sh``
and CI)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --smoke
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import read_history
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools
from repro.runs import RunRegistry, RunRequest, execute_run
from repro.dist import execute_run_sharded

#: Pass thresholds (asserted by the pytest bench and ``--smoke``).
SHARDS = 4
MIN_SPEEDUP = 2.0
#: Simulated single-process wall time the latency is tuned to.
TARGET_SINGLE_S = 1.6

#: Set once per process (workers inherit it through ``fork``).
_LATENCY_S = 0.0


class LatencySimulatingModel(BaseChatModel):
    """A ChatModel answering like GPT-4 after a fixed sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        if self.latency_s:
            time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def latency_resolver(name: str):
    """Module-level so it pickles into forked shard workers."""
    return LatencySimulatingModel(_LATENCY_S)


def _events(registry: RunRegistry, run_id: str) -> list[str]:
    lines = registry.ledger_path(run_id).read_text(
        encoding="utf-8").splitlines()
    return [line for line in lines
            if json.loads(line).get("event") in
            ("record", "cell-started", "cell-finished")]


def _measure(sample_size: int = 40) -> list[dict[str, object]]:
    global _LATENCY_S
    root = tempfile.mkdtemp(prefix="repro-bench-dist-")
    try:
        registry = RunRegistry(root)
        request = RunRequest(models=("GPT-4",),
                             taxonomy_keys=("ebay",),
                             sample_size=sample_size, seed="bench")

        # Warm the artifact store and the oracle's lazy indexes so
        # the forked workers load pools from disk instead of
        # regenerating taxonomies, and so neither timed side pays
        # one-time build costs.
        pool = build_pools(
            "ebay", sample_size=sample_size,
            seed="bench").total_pool(DatasetKind.HARD)
        EvaluationRunner().evaluate(LatencySimulatingModel(0.0), pool)
        n = len(pool)
        _LATENCY_S = TARGET_SINGLE_S / max(1, n)

        started = time.perf_counter()
        single = execute_run(request, registry=registry,
                             resolve_model=latency_resolver)
        single_s = time.perf_counter() - started

        started = time.perf_counter()
        sharded = execute_run_sharded(
            request, shards=SHARDS, registry=registry, procs=SHARDS,
            resolve_model=latency_resolver)
        sharded_s = time.perf_counter() - started
        speedup = single_s / sharded_s

        # -- equality gate material ---------------------------------
        identical = (_events(registry, single.run_id)
                     == _events(registry, sharded.run_id))
        metrics_match = (
            sharded.cells.keys() == single.cells.keys()
            and all(sharded.cells[key].metrics == result.metrics
                    for key, result in single.cells.items()))
        history = [entry for entry in read_history(registry)
                   if entry.run_id == sharded.run_id]
        fanout = history[-1].shards if history else 0

        return [
            {"mode": "single-process", "n": n,
             "wall_s": f"{single_s:.3f}", "gate": "-"},
            {"mode": f"{SHARDS} shards x {SHARDS} procs", "n": n,
             "wall_s": f"{sharded_s:.3f}",
             "gate": f"speedup {speedup:.1f}x"},
            {"mode": "merged ledger", "n": n, "wall_s": "-",
             "gate": f"identical {identical and metrics_match}"},
            {"mode": "history fan-out", "n": n, "wall_s": "-",
             "gate": f"shards {fanout}"},
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _gate(rows: list[dict[str, object]], prefix: str) -> str:
    row = next(row for row in rows
               if str(row["gate"]).startswith(prefix))
    return str(row["gate"]).split()[-1]


def _assert_gates(rows: list[dict[str, object]]) -> None:
    assert _gate(rows, "identical") == "True", \
        "sharded merge is not bit-identical to the single-process run"
    assert int(_gate(rows, "shards")) == SHARDS, \
        "merge did not stamp the shard fan-out into obs.history"
    cores = os.cpu_count() or 1
    if cores >= SHARDS:
        speedup = float(_gate(rows, "speedup").rstrip("x"))
        assert speedup >= MIN_SPEEDUP, \
            f"{SHARDS} shards on {cores} cores only {speedup:.1f}x " \
            f"faster than single-process (gate: {MIN_SPEEDUP:.0f}x)"


def test_shard_scaling(benchmark, report):
    rows = once(benchmark, _measure)
    _assert_gates(rows)
    report(format_rows(
        rows, title=f"Sharded scaling: {SHARDS} shards vs "
                    f"single-process (simulated latency)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    smoke = "--smoke" in sys.argv
    table = _measure(sample_size=24 if smoke else 40)
    _assert_gates(table)
    print(format_rows(table, title="Shard scaling smoke" if smoke
                      else "Shard scaling"))
