"""Shared benchmark configuration.

Every paper table/figure has one bench module.  By default benches run
at a reduced scale (smaller per-level samples, a representative model
subset) so the whole suite finishes in minutes; set
``REPRO_BENCH_SCALE=paper`` to run the full Cochran-sized pools with
all eighteen models, which regenerates the tables at the paper's exact
question counts.

Benches execute their workload once (``rounds=1``) — the interesting
output is the regenerated table, printed via the ``report`` fixture
(run pytest with ``-s`` to see them), not a latency distribution.
"""

from __future__ import annotations

import os

import pytest

from repro.core.benchmark import TaxoGlimpse
from repro.experiments.config import ExperimentConfig

#: Representative subset: the strongest API model, a mid open model,
#: the abstainer, both Flan-T5 sizes and the domain-tuned model.
FAST_MODELS = ("GPT-4", "Llama-2-7B", "Llama-3-8B", "Flan-T5-3B",
               "Flan-T5-11B", "LLMs4OL")

PAPER_SCALE = os.environ.get("REPRO_BENCH_SCALE", "fast") == "paper"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    if PAPER_SCALE:
        return ExperimentConfig()
    return ExperimentConfig(sample_size=60, models=FAST_MODELS)


@pytest.fixture(scope="session", autouse=True)
def dataset_store(config):
    """Build every pool once through the artifact store, in parallel.

    All bench files then share the same store-backed ``default_pools``
    artifacts (warm disk loads) instead of regenerating pools per file;
    on a second bench run even this fixture is pure load.
    """
    from repro.store import build_all_datasets, default_store

    store = default_store()
    if store is not None:
        build_all_datasets(sample_size=config.sample_size, store=store)
    return store


@pytest.fixture(scope="session")
def bench_harness(config, dataset_store) -> TaxoGlimpse:
    """One facade shared by all benches (pools are cached inside)."""
    return TaxoGlimpse(sample_size=config.sample_size)


@pytest.fixture()
def report(capsys):
    """Print a regenerated table without fighting pytest's capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print


def once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
