"""Bench F6 — regenerate Figure 6 (instance typing per level)."""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.instances import run_instance_typing
from repro.questions.instance_typing import INSTANCE_TYPING_KEYS


def test_figure6_instance_typing(benchmark, report, config):
    typing_config = ExperimentConfig(
        sample_size=config.sample_size,
        models=tuple(m for m in config.models
                     if m in ("GPT-4", "Llama-3-8B", "Flan-T5-11B",
                              "LLMs4OL", "GPT-3.5"))
        or ("GPT-4",),
        taxonomy_keys=tuple(k for k in config.taxonomy_keys
                            if k in INSTANCE_TYPING_KEYS))
    series = once(benchmark, run_instance_typing, typing_config)
    assert series

    # Root-to-leaf decline except the name-overlapping OAE/NCBI tails.
    declining = [s for s in series
                 if s.taxonomy_key in ("google", "amazon", "glottolog",
                                       "icd10cm")]
    if declining:
        assert sum(1 for s in declining if s.declines_overall) \
            / len(declining) > 0.5

    rows = [{
        "model": s.model,
        "taxonomy": s.taxonomy_key,
        "target level": level,
        "accuracy": round(accuracy, 3),
    } for s in series
        for level, accuracy in zip(s.target_levels, s.accuracies)]
    report(format_rows(
        rows, title="Figure 6: instance typing (hard datasets)"))
