"""Bench COST — metering overhead + budget-stop determinism gates.

Two gates guard the cost-accounting layer:

1. **Overhead**: the same sleep-backed model answers the same prompt
   stream bare and wrapped in a :class:`repro.obs.CostMeter` billing
   into a real engine :class:`~repro.engine.telemetry.Telemetry`,
   with an :class:`repro.obs.AlertEvaluator` folding a dashboard
   snapshot every few calls (the `repro watch` cadence).  Token
   counting is ``ceil(len/4)`` and prices are cached integers, so the
   metered variant must stay within 5% (plus a small absolute floor
   for OS jitter) of the bare one.
2. **Budget-stop determinism**: a run capped with ``--max-cost-usd``
   must stop at a cell boundary, resume to completion, and end up
   *bit-identical* — same records, same per-cell cost fold — to the
   same request executed without a budget.  This is the property that
   makes a budget ceiling safe to use: it can only ever delay
   results, never change them.

The determinism gate also writes the unbudgeted run's ``obs cost``
JSON document to ``benchmarks/.artifacts/cost_report.json`` — CI
uploads it so every build carries its own cost accounting.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_cost_overhead.py
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from types import SimpleNamespace

from conftest import once

from repro.core.report import format_rows
from repro.engine.telemetry import Telemetry
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import AlertEvaluator, CostLedger, CostMeter
from repro.runs import (RunRegistry, RunRequest, diff_runs,
                        execute_run, resume_run)

#: Maximum allowed slowdown of metered calls vs. bare calls.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so short smokes tolerate OS jitter —
#: hundreds of millisecond sleeps make the floor scheduler-noisy.
ABSOLUTE_SLACK_S = 0.015
#: Simulated backend latency — small enough that per-call accounting
#: overhead would show, large enough to dominate interpreter noise.
LATENCY_S = 0.001
#: Snapshot-fold cadence: one evaluator observation per this many
#: calls (far harder than the 1 s `repro watch` default).
OBSERVE_EVERY = 10

ARTIFACT_DIR = pathlib.Path(__file__).resolve().parent / ".artifacts"

BUDGETED = dict(models=("GPT-4", "GPT-3.5"), taxonomy_keys=("ebay",))


class _SleepingModel(BaseChatModel):
    """GPT-4 answers behind a fixed GIL-releasing sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def _snapshot(done: int, elapsed_s: float) -> SimpleNamespace:
    """A RunProgress-shaped frame for the evaluator to fold."""
    return SimpleNamespace(run_id="bench", status="running",
                           questions_done=done, faults=0,
                           elapsed_s=elapsed_s,
                           throughput=done / max(elapsed_s, 1e-9),
                           latency_p99_s=LATENCY_S,
                           cost_usd=done * 1e-5)


def _prompts(calls: int) -> list[str]:
    return [f"Is item {i} a type of category {i % 7}? "
            f"answer with (Yes/No/I don't know)"
            for i in range(calls)]


def _time_bare(calls: int) -> float:
    model = _SleepingModel(LATENCY_S)
    prompts = _prompts(calls)
    model.generate(prompts[0])           # warm the oracle's indexes
    started = time.perf_counter()
    for prompt in prompts:
        model.generate(prompt)
    return time.perf_counter() - started


def _time_metered(calls: int) -> float:
    telemetry = Telemetry()
    meter = CostMeter(_SleepingModel(LATENCY_S), telemetry)
    evaluator = AlertEvaluator()
    prompts = _prompts(calls)
    meter.generate(prompts[0])           # warm outside the clock
    started = time.perf_counter()
    for index, prompt in enumerate(prompts):
        meter.generate(prompt)
        if index % OBSERVE_EVERY == 0:
            evaluator.observe(_snapshot(index + 1,
                                        time.perf_counter() - started))
    elapsed = time.perf_counter() - started
    stats = telemetry.snapshot()
    assert stats.prompt_tokens > 0 and stats.cost_nanos > 0, \
        "metered variant recorded no spend"
    return elapsed


def _measure_overhead(calls: int = 300,
                      repeats: int = 3) -> dict[str, object]:
    bare_s = min(_time_bare(calls) for _ in range(repeats))
    metered_s = min(_time_metered(calls) for _ in range(repeats))
    return {
        "calls": calls,
        "bare_s": bare_s,
        "metered_s": metered_s,
        "overhead": metered_s / bare_s - 1.0,
    }


def _within_budget(result: dict[str, object]) -> bool:
    excess = float(result["metered_s"]) - float(result["bare_s"])
    return (excess
            <= float(result["bare_s"]) * OVERHEAD_BUDGET
            + ABSOLUTE_SLACK_S)


def _check_budget_determinism(
        sample_size: int = 8) -> dict[str, object]:
    """Capped-then-resumed must equal never-capped, bit for bit."""
    with tempfile.TemporaryDirectory() as root:
        registry = RunRegistry(root)
        capped = execute_run(
            RunRequest(**BUDGETED, sample_size=sample_size,
                       max_cost_usd=0.0001),
            registry=registry)
        assert capped.budget is not None, \
            "budget ceiling did not stop the run"
        stopped_after = len(capped.cells)
        resumed = resume_run(capped.run_id, registry=registry)

        free = execute_run(
            RunRequest(**BUDGETED, sample_size=sample_size),
            registry=registry)
        diff = diff_runs(resumed, free)
        assert diff.identical, (
            f"budget-stopped-then-resumed run diverged from the "
            f"unbudgeted run: {len(diff.changed_cells)} changed "
            f"cells, {diff.total_flips} flips")

        fold_a = CostLedger.from_run(capped.run_id,
                                     registry=registry)
        fold_b = CostLedger.from_run(free.run_id, registry=registry)
        assert (fold_a.total_cost_nanos == fold_b.total_cost_nanos
                and fold_a.total_cost_nanos > 0), (
            f"cost folds diverged: {fold_a.total_cost_nanos} != "
            f"{fold_b.total_cost_nanos}")

        ARTIFACT_DIR.mkdir(exist_ok=True)
        artifact = ARTIFACT_DIR / "cost_report.json"
        artifact.write_text(json.dumps(fold_b.to_dict(), indent=1)
                            + "\n")
        return {
            "cells": len(free.cells),
            "stopped_after": stopped_after,
            "cost_usd": f"{fold_b.total_cost_usd:.6f}",
            "identical": diff.identical,
            "artifact": artifact.name,
        }


def _rows(overhead: dict[str, object],
          determinism: dict[str, object]) -> list[dict[str, object]]:
    return [{
        "calls": overhead["calls"],
        "bare_s": f"{overhead['bare_s']:.4f}",
        "metered_s": f"{overhead['metered_s']:.4f}",
        "overhead": f"{overhead['overhead'] * 100:+.2f}%",
        "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        "stop_at_cell": (f"{determinism['stopped_after']}/"
                         f"{determinism['cells']}"),
        "resume_identical": determinism["identical"],
        "run_cost_usd": determinism["cost_usd"],
    }]


def test_cost_overhead_and_budget_determinism(benchmark, report):
    overhead = once(benchmark, _measure_overhead)
    assert _within_budget(overhead), (
        f"cost metering overhead {overhead['overhead'] * 100:.2f}% "
        f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget "
        f"(bare {overhead['bare_s']:.4f}s, "
        f"metered {overhead['metered_s']:.4f}s)")
    determinism = _check_budget_determinism()
    report(format_rows(_rows(overhead, determinism),
                       title="Cost metering overhead (1 ms simulated "
                             "latency) + budget-stop determinism"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    outcome = _measure_overhead(calls=150, repeats=3)
    verdict = _check_budget_determinism(sample_size=6)
    print(format_rows(_rows(outcome, verdict),
                      title="Cost metering + budget determinism "
                            "smoke"))
    if not _within_budget(outcome):
        raise SystemExit("cost metering overhead exceeds budget")
