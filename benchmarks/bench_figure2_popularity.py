"""Bench F2 — regenerate Figure 2 (taxonomy popularity)."""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.popularity import (common_beat_specialized,
                                          figure2_rows)
from repro.figures.ascii import bar_chart


def test_figure2_popularity(benchmark, report):
    rows = once(benchmark, figure2_rows)
    assert len(rows) == 10
    # The paper's headline: the four common taxonomies out-rank all
    # six specialized ones.
    assert [row["group"] for row in rows[:4]] == ["common"] * 4
    assert common_beat_specialized()
    report(format_rows(
        rows, title="Figure 2: popularity (mean simulated web hits)"))
    report(bar_chart(
        {row["taxonomy"]: float(row["mean_hits"]) for row in rows},
        log_scale=True,
        title="Figure 2 (log-scale bars)"))
