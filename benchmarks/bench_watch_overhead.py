"""Bench WATCH — follower overhead gate (run alone vs. run + watch).

Executes the identical ledgered sweep — a sleep-backed model standing
in for a network endpoint, streaming into the run ledger — twice:
once undisturbed, and once with a :class:`repro.obs.LedgerFollower`
polling the run's ledger and span log from another thread at watch
cadence.  The follower is strictly read-only (its only cost to the
run is filesystem read pressure), and the gate asserts that cost is
at most 5% extra wall time plus a small absolute floor.  The watched
variant also asserts the follower's final snapshot converged to the
post-hoc ledger state — the live dashboard must never disagree with
``load_run``.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_watch_overhead.py
"""

from __future__ import annotations

import tempfile
import threading
import time

from conftest import once

from repro.core.report import format_rows
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import LedgerFollower
from repro.runs import RunRegistry, RunRequest, create_run, \
    execute_run

#: Maximum allowed slowdown of a watched run vs. an unwatched one.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so short smoke runs tolerate OS jitter.
ABSOLUTE_SLACK_S = 0.015
#: Seconds between follower polls — the `repro watch` default is 1 s;
#: the bench polls far harder to make the gate conservative.
POLL_INTERVAL_S = 0.02


class _SleepingModel(BaseChatModel):
    """GPT-4 answers behind a fixed GIL-releasing sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def _run_once(request: RunRequest, registry: RunRegistry,
              latency_s: float, follow: bool) -> float:
    def resolve(_name: str):
        return _SleepingModel(latency_s)

    run_id = create_run(request, registry=registry)
    stop = threading.Event()
    follower = polls = thread = None
    if follow:
        follower = LedgerFollower(run_id, registry=registry)
        polls = [0]

        def poll_loop():
            while not stop.is_set():
                follower.poll()
                polls[0] += 1
                time.sleep(POLL_INTERVAL_S)

        thread = threading.Thread(target=poll_loop, daemon=True)
        thread.start()
    started = time.perf_counter()
    result = execute_run(request, registry=registry, run_id=run_id,
                         resolve_model=resolve)
    elapsed = time.perf_counter() - started
    if follow:
        stop.set()
        thread.join()
        final = follower.poll()
        expected = sum(cell.metrics.n
                       for cell in result.cells.values())
        assert final.finished and final.status == "finished", \
            "follower snapshot did not converge to finished"
        assert final.questions_done == expected, (
            f"follower saw {final.questions_done} questions, "
            f"ledger holds {expected}")
        assert polls[0] > 0
    return elapsed


def _measure(sample_size: int = 12, latency_s: float = 0.002,
             repeats: int = 3) -> dict[str, object]:
    """Best-of-N wall time for the unwatched and watched variants."""
    request = RunRequest(models=("GPT-4",), taxonomy_keys=("ebay",),
                         sample_size=sample_size, workers=4)
    with tempfile.TemporaryDirectory() as root:
        registry = RunRegistry(root)
        # Warm the oracle's lazy indexes outside the measurement.
        _run_once(request, registry, 0.0, follow=False)
        alone_s = min(_run_once(request, registry, latency_s,
                                follow=False)
                      for _ in range(repeats))
        watched_s = min(_run_once(request, registry, latency_s,
                                  follow=True)
                        for _ in range(repeats))
    return {
        "alone_s": alone_s,
        "watched_s": watched_s,
        "overhead": watched_s / alone_s - 1.0,
    }


def _rows(result: dict[str, object]) -> list[dict[str, object]]:
    return [{
        "alone_s": f"{result['alone_s']:.4f}",
        "watched_s": f"{result['watched_s']:.4f}",
        "overhead": f"{result['overhead'] * 100:+.2f}%",
        "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        "poll_every": f"{POLL_INTERVAL_S * 1e3:.0f}ms",
    }]


def _within_budget(result: dict[str, object]) -> bool:
    excess = float(result["watched_s"]) - float(result["alone_s"])
    return (excess
            <= float(result["alone_s"]) * OVERHEAD_BUDGET
            + ABSOLUTE_SLACK_S)


def test_watch_overhead(benchmark, report):
    result = once(benchmark, _measure)
    assert _within_budget(result), (
        f"follower overhead {result['overhead'] * 100:.2f}% exceeds "
        f"the {OVERHEAD_BUDGET * 100:.0f}% budget "
        f"(alone {result['alone_s']:.4f}s, "
        f"watched {result['watched_s']:.4f}s)")
    report(format_rows(_rows(result),
                       title="Live-follower overhead (2 ms simulated "
                             "latency, 4 workers)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    outcome = _measure(sample_size=6, latency_s=0.002, repeats=2)
    print(format_rows(_rows(outcome),
                      title="Live-follower overhead smoke"))
    if not _within_budget(outcome):
        raise SystemExit("follower overhead exceeds budget")
