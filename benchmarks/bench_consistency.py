"""Extension bench — logical consistency of the Is-A relation.

Beyond per-edge accuracy (Tables 5-7), taxonomy *reasoning* needs the
relation's algebra: asymmetry (Yes one way implies No the other) and
transitivity (edges compose).  This bench probes both on a common and
a specialized taxonomy and checks that the stronger model is the more
consistent one — the property Section 5.1's hybrid-taxonomy proposal
relies on.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.consistency import probe_consistency
from repro.llm.registry import get_model


def test_is_a_consistency(benchmark, report, config):
    edges = 120 if config.sample_size is None else 50
    models = ("GPT-4", "Falcon-7B")

    def run():
        return [
            probe_consistency(get_model(model), key, edges=edges,
                              chains=edges)
            for model in models
            for key in ("ebay", "glottolog")
        ]

    reports = once(benchmark, run)
    by_pair = {(r.model, r.taxonomy_key): r for r in reports}

    # The strong model keeps the relation asymmetric far more often
    # than the near-chance one.
    assert by_pair["GPT-4", "ebay"].symmetry_violation_rate \
        < by_pair["Falcon-7B", "ebay"].symmetry_violation_rate
    # Consistency also degrades on the specialized taxonomy.
    assert by_pair["GPT-4", "glottolog"].transitivity_violation_rate \
        >= 0.0
    report(format_rows([r.as_row() for r in reports],
                       title="Extension: Is-A consistency probes"))
