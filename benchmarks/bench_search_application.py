"""Extension bench — entity search: the paper's motivating application.

The introduction motivates taxonomies with entity search ("best health
tracker").  This bench compares three routing strategies end to end
and checks the who-wins shape: the explicit tree is near-perfect, a
raw LLM scan over the corpus collapses in precision, and the
Section 5.1 hybrid lands in between — quantifying what "replacing the
taxonomy" costs at the application level.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.search.evaluation import evaluate_search


def test_search_strategy_comparison(benchmark, report, config):
    queries = 150 if config.sample_size is None else 60
    scores = once(benchmark, evaluate_search, "ebay", queries)
    by_name = {score.strategy: score for score in scores}

    assert by_name["tree"].precision > 0.95
    assert by_name["llm-only"].precision < 0.1
    assert by_name["tree"].precision \
        > by_name["hybrid"].precision \
        > by_name["llm-only"].precision
    assert by_name["hybrid"].recall > by_name["hybrid"].precision - 0.2

    report(format_rows(
        [score.as_row() for score in scores],
        title="Extension: entity search — tree vs LLM-only vs hybrid "
        "(eBay corpus)"))
