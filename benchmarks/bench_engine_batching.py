"""Bench BATCH — batched+coalesced engine vs. the threaded baseline.

Drives a duplicate-heavy workload (10 000 prompts, 2 000 unique) against
a synthetic endpoint that models a real batch API: a server-side
concurrency cap of eight, one network round trip per *call* (so a
32-prompt batch costs one latency plus a small per-item increment, not
32 latencies).  The baseline is the engine at its pre-batching best —
eight workers over a warm-capable cache — and the contender adds
``batch_size=32`` + coalescing + the AIMD limiter.

Three gates, wired into ``scripts/check.sh`` and CI:

* the batched configuration is **>= 2x** faster than the threaded
  baseline;
* coalescing + caching issue **exactly one** backend call per unique
  prompt — not one extra, which the coalesce-outside-cache ordering
  makes deterministic rather than probabilistic;
* records and metrics are **bit-identical** to the sequential runner at
  every probed (workers, batch_size, coalesce, hedged-pool) combination.

The run's engine stats land as JSON in ``REPRO_BATCH_STATS_ARTIFACT``
(default ``benchmarks/.artifacts/engine_batching_stats.json``) — CI
uploads it so a throughput regression comes with the batch/coalesce
counters that explain it.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_engine_batching.py
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Sequence
from pathlib import Path

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.engine.config import EngineConfig
from repro.engine.pool import BackendPool
from repro.engine.scheduler import EvaluationEngine
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools

#: Where the batched pass's engine stats land (CI artifact).
STATS_ARTIFACT_ENV = "REPRO_BATCH_STATS_ARTIFACT"
DEFAULT_STATS_ARTIFACT = (Path(__file__).resolve().parent
                          / ".artifacts"
                          / "engine_batching_stats.json")

#: (workers, batch_size, coalesce, hedged pool) bit-identity probes.
IDENTITY_COMBOS = ((1, 4, True, False), (2, 2, False, False),
                   (8, 8, True, False), (4, 4, True, True))


class SyntheticBatchEndpoint(BaseChatModel):
    """A batch-capable endpoint with a server-side concurrency cap.

    One *call* costs one round trip: ``latency_s`` for the request
    plus ``per_item_s`` for each prompt in it.  That is the economics
    that make batching win — 32 prompts in one call cost ~one latency,
    not 32.  The semaphore models the provider-side concurrency cap
    that no amount of client threads can push past, which is why the
    threaded baseline plateaus.
    """

    def __init__(self, latency_s: float = 0.006,
                 per_item_s: float = 0.0001, server_cap: int = 8):
        super().__init__("synthetic-batch")
        self.latency_s = latency_s
        self.per_item_s = per_item_s
        self._server = threading.Semaphore(server_cap)

    def _respond(self, prompt: str) -> str:
        with self._server:
            time.sleep(self.latency_s + self.per_item_s)
        return f"ans:{prompt}"

    def _respond_batch(self, prompts: Sequence[str]) -> list[str]:
        with self._server:
            time.sleep(self.latency_s
                       + self.per_item_s * len(prompts))
        return [f"ans:{prompt}" for prompt in prompts]


def _workload(n_prompts: int, n_unique: int) -> list[str]:
    """Duplicate-heavy but shuffled: 7919 is coprime to any
    ``n_unique`` that divides a power of 10, so the first ``n_unique``
    items cover every distinct prompt before repeats begin."""
    return [f"q{(i * 7919) % n_unique:05d}" for i in range(n_prompts)]


def _ask(model, prompt: str) -> str:
    return model.generate(prompt)


def _measure(n_prompts: int = 10_000, n_unique: int = 2_000,
             latency_s: float = 0.006) -> list[dict[str, object]]:
    """Threaded baseline vs. batched+coalesced, plus identity sweep."""
    work = _workload(n_prompts, n_unique)
    expected = [f"ans:{prompt}" for prompt in work]
    rows: list[dict[str, object]] = []

    baseline_engine = EvaluationEngine(
        EngineConfig(max_workers=8, retry=None))
    model = SyntheticBatchEndpoint(latency_s)
    started = time.perf_counter()
    results = baseline_engine.run(model, work, _ask)
    baseline_s = time.perf_counter() - started
    assert results == expected
    rows.append({"mode": "8 workers (baseline)", "n": n_prompts,
                 "unique": n_unique, "wall_s": f"{baseline_s:.3f}",
                 "speedup": "1.0x",
                 "calls": baseline_engine.stats().calls,
                 "batches": 0, "coalesced": 0})

    batched_engine = EvaluationEngine(
        EngineConfig(max_workers=8, max_in_flight=128, batch_size=32,
                     coalesce=True, adaptive=True, retry=None))
    model = SyntheticBatchEndpoint(latency_s)
    seen = [0] * n_prompts

    def on_result(index: int, result: str) -> None:
        seen[index] += 1

    started = time.perf_counter()
    results = batched_engine.run(model, work, _ask,
                                 on_result=on_result)
    batched_s = time.perf_counter() - started
    assert results == expected
    assert seen == [1] * n_prompts
    stats = batched_engine.stats()
    rows.append({"mode": "batch=32 +coalesce", "n": n_prompts,
                 "unique": n_unique, "wall_s": f"{batched_s:.3f}",
                 "speedup": f"{baseline_s / batched_s:.1f}x",
                 "calls": stats.calls, "batches": stats.batches,
                 "coalesced": stats.coalesced})

    identity = _identity_sweep()
    _write_stats_artifact(n_prompts, n_unique, baseline_s, batched_s,
                          stats, identity)
    return rows


def _identity_sweep() -> list[dict[str, object]]:
    """Prove records+metrics bit-identity against the sequential
    runner at every probed engine configuration, hedged pool
    included."""
    pool = build_pools("ebay", sample_size=6).total_pool(
        DatasetKind.HARD)
    sequential = EvaluationRunner(keep_records=True).evaluate(
        get_model("GPT-4"), pool)
    probes: list[dict[str, object]] = []
    for workers, batch_size, coalesce, hedged in IDENTITY_COMBOS:
        engine = EvaluationEngine(
            EngineConfig(max_workers=workers, batch_size=batch_size,
                         coalesce=coalesce, cache=False, retry=None))
        backend = get_model("GPT-4")
        if hedged:
            backend = BackendPool(
                [get_model("GPT-4"), get_model("GPT-4")],
                hedge_delay_s=0.005, telemetry=engine.telemetry)
        try:
            result = EvaluationRunner(
                engine=engine, keep_records=True).evaluate(
                    backend, pool)
        finally:
            if hedged:
                backend.close()
        probes.append({
            "workers": workers, "batch_size": batch_size,
            "coalesce": coalesce, "hedged": hedged,
            "identical": (result.records == sequential.records
                          and result.metrics == sequential.metrics),
        })
    return probes


def _write_stats_artifact(n_prompts: int, n_unique: int,
                          baseline_s: float, batched_s: float,
                          stats, identity: list[dict[str, object]]
                          ) -> Path:
    target = Path(os.environ.get(STATS_ARTIFACT_ENV,
                                 DEFAULT_STATS_ARTIFACT))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps({
        "n_prompts": n_prompts,
        "n_unique": n_unique,
        "baseline_wall_s": round(baseline_s, 4),
        "batched_wall_s": round(batched_s, 4),
        "speedup": round(baseline_s / batched_s, 2),
        "engine_stats": stats.to_dict(),
        "identity": identity,
    }, indent=1) + "\n", encoding="utf-8")
    return target


def _gate(rows: list[dict[str, object]]) -> None:
    """The three hard gates shared by pytest and the smoke entry."""
    batched = next(row for row in rows
                   if row["mode"] == "batch=32 +coalesce")
    # Gate 1: batching+coalescing beat the threaded baseline >= 2x.
    assert float(str(batched["speedup"]).rstrip("x")) >= 2.0, batched
    # Gate 2: exactly one backend call per unique prompt — duplicates
    # ride the coalescer or the cache, never the wire.
    assert batched["calls"] == batched["unique"], batched
    assert batched["batches"] >= 2
    # Gate 3: every probed configuration is bit-identical to the
    # sequential runner (recorded in the stats artifact).
    artifact = Path(os.environ.get(STATS_ARTIFACT_ENV,
                                   DEFAULT_STATS_ARTIFACT))
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["identity"], "identity sweep ran no probes"
    for probe in payload["identity"]:
        assert probe["identical"], probe


def test_engine_batching(benchmark, report):
    rows = once(benchmark, _measure)
    _gate(rows)
    report(format_rows(
        rows,
        title="Engine batching (10k prompts, 2k unique, 6 ms/call)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    smoke_rows = _measure(n_prompts=3_000, n_unique=600,
                          latency_s=0.008)
    _gate(smoke_rows)
    print(format_rows(smoke_rows, title="Engine batching smoke"))
