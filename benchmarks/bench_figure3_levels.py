"""Bench F3 — regenerate Figure 3 (per-level accuracy, hard)."""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.levels import run_levels
from repro.figures.ascii import line_chart


def test_figure3_per_level_accuracy(benchmark, report, config,
                                    bench_harness):
    series = once(benchmark, run_levels, config, bench=bench_harness)
    by_pair = {(s.model, s.taxonomy_key): s for s in series}

    # Root-to-leaf decline on the common taxonomies for most models.
    declining = sum(1 for s in series
                    if s.taxonomy_key in ("amazon", "google", "ebay")
                    and s.declines_overall)
    total = sum(1 for s in series
                if s.taxonomy_key in ("amazon", "google", "ebay"))
    assert declining / total > 0.6

    # The NCBI species->genus uplift (Figure 3(i)).
    if ("GPT-4", "ncbi") in by_pair:
        assert by_pair["GPT-4", "ncbi"].last_level_uplift > 0.05

    rows = [row for s in series for row in s.rows()]
    report(format_rows(
        rows, title="Figure 3: accuracy per level (hard datasets)"))

    # Render the NCBI panel (Figure 3(i)) as an actual chart.
    ncbi = {s.model: list(s.accuracies) for s in series
            if s.taxonomy_key == "ncbi"}
    if ncbi:
        levels = next(s for s in series
                      if s.taxonomy_key == "ncbi").levels
        report(line_chart(
            ncbi, [f"L{level}" for level in levels],
            title="Figure 3(i): NCBI accuracy by level"))
