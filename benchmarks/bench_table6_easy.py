"""Bench T6 — regenerate Table 6 (overall results, easy datasets)."""

from __future__ import annotations

from conftest import once

from repro.experiments.overall import run_overall
from repro.questions.model import DatasetKind


def test_table6_easy_overall(benchmark, report, config, bench_harness):
    result = once(benchmark, run_overall, DatasetKind.EASY, config,
                  bench_harness)
    assert result.mean_abs_accuracy_delta < 0.10
    matrix = result.matrix()
    # Easy >= hard in the paper for nearly every strong-model cell;
    # check the flagship comparison.
    hard = bench_harness.run("GPT-4", "google", DatasetKind.HARD)
    assert matrix["GPT-4", "google"].accuracy \
        >= hard.metrics.accuracy
    report(bench_harness.format_table(
        matrix, title="Table 6: overall results on easy datasets "
        f"(mean |dA| vs paper = {result.mean_abs_accuracy_delta:.3f})"))
