"""Bench DS — dataset pipeline: cold builds vs. artifact-store loads.

Builds every taxonomy's question pools three ways against a scratch
store — cold in parallel worker processes, cold sequentially in-process
and warm from the on-disk columnar artifacts — then verifies the three
results are equal question for question.  Taxonomy caches are cleared
before each cold phase so neither measurement is flattered by the
other's warm ``lru_cache``.

The warm-load speedup is asserted unconditionally (deserialization
must beat regeneration by >= 10x).  The parallel speedup (>= 2x) is
only asserted when the machine actually has ``PARALLEL_JOBS`` cores:
on a single-core container process fan-out can only add overhead, and
the row is reported without judgement.

Run standalone for a reduced-scale smoke (used by ``scripts/check.sh``
and CI)::

    PYTHONPATH=src python benchmarks/bench_dataset_build.py --smoke
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time

from conftest import once

from repro.core.report import format_rows
from repro.generators.registry import TAXONOMY_KEYS, build_taxonomy
from repro.questions.model import DatasetKind
from repro.questions.pools import generate_pools
from repro.store import ArtifactStore, build_all_datasets

PARALLEL_JOBS = 4


def _assert_equal(expected, actual, label: str) -> None:
    for key in TAXONOMY_KEYS:
        for kind in DatasetKind:
            assert (expected[key].total_pool(kind).questions ==
                    actual[key].total_pool(kind).questions), \
                f"{label}: {key}/{kind.value} pools differ"


def _measure(sample_size: int | None = None,
             jobs: int = PARALLEL_JOBS) -> list[dict[str, object]]:
    """Time parallel-cold, sequential-cold and warm-load builds."""
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        # Parallel first: workers fork from this process, so its
        # taxonomy caches must be cold for an honest measurement.
        build_taxonomy.cache_clear()
        store = ArtifactStore(root)
        started = time.perf_counter()
        parallel = build_all_datasets(sample_size=sample_size,
                                      jobs=jobs, store=store, force=True)
        parallel_s = time.perf_counter() - started

        build_taxonomy.cache_clear()
        started = time.perf_counter()
        sequential = {key: generate_pools(key, sample_size=sample_size)
                      for key in TAXONOMY_KEYS}
        sequential_s = time.perf_counter() - started

        warm_store = ArtifactStore(root)
        started = time.perf_counter()
        warm = build_all_datasets(sample_size=sample_size,
                                  store=warm_store)
        warm_s = time.perf_counter() - started
        assert warm_store.stats.hits == len(TAXONOMY_KEYS)
        assert warm_store.stats.builds == 0, \
            "warm load must do zero generation work"

        _assert_equal(sequential, parallel, "parallel vs sequential")
        _assert_equal(sequential, warm, "warm vs sequential")

        questions = sum(len(sequential[key].total_pool(kind))
                        for key in TAXONOMY_KEYS for kind in DatasetKind)
        rows = []
        for mode, elapsed in (("cold sequential", sequential_s),
                              (f"cold parallel x{jobs}", parallel_s),
                              ("warm load", warm_s)):
            rows.append({
                "mode": mode, "questions": questions,
                "wall_s": f"{elapsed:.3f}",
                "speedup": f"{sequential_s / max(elapsed, 1e-9):.1f}x",
            })
        return rows
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _speedup(rows: list[dict[str, object]], mode: str) -> float:
    row = next(row for row in rows if row["mode"] == mode)
    return float(str(row["speedup"]).rstrip("x"))


def test_dataset_build(benchmark, config, report):
    rows = once(benchmark, _measure, sample_size=config.sample_size)
    assert _speedup(rows, "warm load") >= 10.0
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert _speedup(rows, f"cold parallel x{PARALLEL_JOBS}") >= 2.0
    report(format_rows(
        rows, title="Dataset pipeline: cold builds vs store loads"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    smoke = "--smoke" in sys.argv
    table = _measure(sample_size=20 if smoke else None,
                     jobs=2 if smoke else PARALLEL_JOBS)
    print(format_rows(table, title="Dataset pipeline smoke" if smoke
                      else "Dataset pipeline"))
