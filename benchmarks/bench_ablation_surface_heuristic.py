"""Ablation — how much of the leaf-level signal is surface form?

DESIGN.md calls out the paper's explanation for the NCBI species->genus
uplift and OAE's strength: parent/child *name overlap*.  This bench
isolates the mechanism by running the knowledge-free
SurfaceHeuristicBaseline on leaf-level questions:

* NCBI species embed their genus, and uncle genera don't overlap, so
  the heuristic alone nails even the hard set;
* OAE leaves embed their parents, but the *hard negatives* (uncles)
  share the same site/event tokens — surface form separates positives
  from random negatives (easy) yet collapses against siblings (hard);
* Glottolog dialect names are unrelated to their parents, so the
  heuristic is near chance everywhere.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.llm.registry import surface_baseline
from repro.questions.model import DatasetKind
from repro.questions.pools import default_pools


def _leaf_accuracy(model, key, dataset, sample_size):
    pools = default_pools(key, sample_size=sample_size)
    level = pools.question_levels[-1]
    pool = pools.level_pool(level, dataset)
    return EvaluationRunner().evaluate(model, pool).metrics.accuracy


def test_surface_form_carries_the_leaf_uplift(benchmark, report,
                                              config):
    heuristic = surface_baseline()

    def run():
        rows = []
        for key in ("ncbi", "oae", "glottolog"):
            rows.append({
                "taxonomy": key,
                "leaf acc (easy)": round(_leaf_accuracy(
                    heuristic, key, DatasetKind.EASY,
                    config.sample_size), 3),
                "leaf acc (hard)": round(_leaf_accuracy(
                    heuristic, key, DatasetKind.HARD,
                    config.sample_size), 3),
            })
        return rows

    rows = once(benchmark, run)
    by_key = {row["taxonomy"]: row for row in rows}
    # Name overlap alone nails NCBI species->genus...
    assert by_key["ncbi"]["leaf acc (hard)"] > 0.9
    # ...separates OAE positives from random negatives but not from
    # surface-similar siblings...
    assert by_key["oae"]["leaf acc (easy)"] > 0.75
    assert by_key["oae"]["leaf acc (hard)"] \
        < by_key["oae"]["leaf acc (easy)"] - 0.15
    # ...and collapses where leaf names are unrelated to parents.
    assert by_key["glottolog"]["leaf acc (hard)"] < 0.75
    report(format_rows(
        rows, title="Ablation: surface-form heuristic at leaf levels "
        "(knowledge-free baseline)"))
