"""Bench TRAIL — provenance capture overhead + bit-identity gates.

Three gates guard the trail layer:

1. **Overhead**: the same request runs against a sleep-backed model
   with ``trail=False`` and ``trail=True`` through the full engine
   stack (workers, retry, cache, coalescing).  Trail capture is one
   thread-local context per question plus a handful of attribute
   writes, so the trailed run must stay within 5% (plus a small
   absolute floor for OS jitter) of the bare one.
2. **Record bit-identity**: trail-on records must equal trail-off
   records field for field once the ``trail`` key is dropped — the
   trail is annotation, never influence.  Checked both at the
   dataclass level (``QuestionRecord.__eq__`` excludes the trail) and
   on the serialized JSON bytes.
3. **Sharded-merge trail identity**: a 3-shard trailed run's merged
   trails must be byte-identical to the same request executed in one
   process — the trail's scheduling-independent fields are a pure
   function of the request, so shard layout cannot show.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_trail_overhead.py
"""

from __future__ import annotations

import json
import tempfile
import time

from conftest import once

from repro.core.report import format_rows
from repro.core.results import record_to_dict
from repro.dist import execute_run_sharded
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.runs import RunRegistry, RunRequest, execute_run

#: Maximum allowed slowdown of trailed runs vs. bare runs.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so short smokes tolerate OS jitter.
ABSOLUTE_SLACK_S = 0.015
#: Simulated backend latency — small enough that per-question trail
#: overhead would show, large enough to dominate interpreter noise.
LATENCY_S = 0.001

SCOPE = dict(models=("GPT-4",), taxonomy_keys=("ebay",), workers=4,
             coalesce=True)


class _SleepingModel(BaseChatModel):
    """GPT-4 answers behind a fixed GIL-releasing sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def _resolve(_: str) -> _SleepingModel:
    return _SleepingModel(LATENCY_S)


def _time_run(trail: bool, sample_size: int) -> float:
    with tempfile.TemporaryDirectory() as root:
        request = RunRequest(**SCOPE, sample_size=sample_size,
                             trail=trail)
        started = time.perf_counter()
        execute_run(request, registry=RunRegistry(root),
                    resolve_model=_resolve)
        return time.perf_counter() - started


def _measure_overhead(sample_size: int = 24,
                      repeats: int = 3) -> dict[str, object]:
    bare_s = min(_time_run(False, sample_size)
                 for _ in range(repeats))
    trailed_s = min(_time_run(True, sample_size)
                    for _ in range(repeats))
    return {
        "sample": sample_size,
        "bare_s": bare_s,
        "trailed_s": trailed_s,
        "overhead": trailed_s / bare_s - 1.0,
    }


def _within_budget(result: dict[str, object]) -> bool:
    excess = float(result["trailed_s"]) - float(result["bare_s"])
    return (excess
            <= float(result["bare_s"]) * OVERHEAD_BUDGET
            + ABSOLUTE_SLACK_S)


def _strip_trail(record) -> str:
    payload = record_to_dict(record)
    payload.pop("trail", None)
    return json.dumps(payload, sort_keys=True)


def _check_record_identity(sample_size: int = 8) -> dict[str, object]:
    """Trail-on records == trail-off records, minus the trail key."""
    with tempfile.TemporaryDirectory() as root:
        registry = RunRegistry(root)
        bare = execute_run(RunRequest(**SCOPE,
                                      sample_size=sample_size),
                           registry=registry)
        trailed = execute_run(RunRequest(**SCOPE,
                                         sample_size=sample_size,
                                         trail=True),
                              registry=registry)
        assert bare.cells.keys() == trailed.cells.keys()
        questions = 0
        trails = 0
        for key, bare_cell in bare.cells.items():
            trailed_cell = trailed.cells[key]
            assert bare_cell.records == trailed_cell.records, (
                f"cell {key.cell_id}: trail capture changed the "
                f"records themselves")
            for a, b in zip(bare_cell.records, trailed_cell.records):
                assert _strip_trail(a) == _strip_trail(b), (
                    f"cell {key.cell_id}: serialized records diverge "
                    f"beyond the trail key")
                assert a.trail is None and b.trail is not None
                questions += 1
                trails += 1
        assert questions > 0, "identity gate compared zero records"
        return {"questions": questions, "with_trail": trails}


def _trail_bytes(registry: RunRegistry, run_id: str) -> list[str]:
    state = registry.state(run_id)
    lines = []
    for cell_id in sorted(state.cells):
        cell = state.cells[cell_id]
        for index in sorted(cell.records):
            payload = record_to_dict(cell.records[index])
            lines.append(json.dumps(
                {"cell": cell_id, "index": index,
                 "trail": payload.get("trail")}, sort_keys=True))
    return lines


def _check_shard_identity(sample_size: int = 8,
                          shards: int = 3) -> dict[str, object]:
    """Merged shard trails byte-identical to a single-process run."""
    request = RunRequest(**SCOPE, sample_size=sample_size, trail=True)
    with tempfile.TemporaryDirectory() as root_a, \
            tempfile.TemporaryDirectory() as root_b:
        single = RunRegistry(root_a)
        sharded = RunRegistry(root_b)
        one = execute_run(request, registry=single)
        many = execute_run_sharded(request, shards, registry=sharded)
        lines_a = _trail_bytes(single, one.run_id)
        lines_b = _trail_bytes(sharded, many.run_id)
        assert lines_a and lines_a == lines_b, (
            f"sharded merge changed the trails: "
            f"{len(lines_a)} single-process vs "
            f"{len(lines_b)} sharded lines")
        return {"shards": shards, "trail_lines": len(lines_a)}


def _rows(overhead: dict[str, object], identity: dict[str, object],
          sharded: dict[str, object]) -> list[dict[str, object]]:
    return [{
        "sample": overhead["sample"],
        "bare_s": f"{overhead['bare_s']:.4f}",
        "trailed_s": f"{overhead['trailed_s']:.4f}",
        "overhead": f"{overhead['overhead'] * 100:+.2f}%",
        "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        "records_identical": identity["questions"],
        "shard_trail_lines": sharded["trail_lines"],
    }]


def test_trail_overhead_and_identity(benchmark, report):
    overhead = once(benchmark, _measure_overhead)
    assert _within_budget(overhead), (
        f"trail capture overhead {overhead['overhead'] * 100:.2f}% "
        f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget "
        f"(bare {overhead['bare_s']:.4f}s, "
        f"trailed {overhead['trailed_s']:.4f}s)")
    identity = _check_record_identity()
    sharded = _check_shard_identity()
    report(format_rows(_rows(overhead, identity, sharded),
                       title="Trail capture overhead (1 ms simulated "
                             "latency) + bit-identity"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    outcome = _measure_overhead(sample_size=12, repeats=3)
    identity = _check_record_identity(sample_size=6)
    sharded = _check_shard_identity(sample_size=6)
    print(format_rows(_rows(outcome, identity, sharded),
                      title="Trail capture overhead + bit-identity "
                            "smoke"))
    if not _within_budget(outcome):
        raise SystemExit("trail capture overhead exceeds budget")
