"""Bench T1 — regenerate Table 1 (taxonomy statistics)."""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.statistics import table1_rows


def test_table1_statistics(benchmark, report):
    rows = once(benchmark, table1_rows)
    assert len(rows) == 10
    by_name = {row["taxonomy"]: row for row in rows}
    # Spec columns reproduce the paper exactly.
    assert by_name["Amazon"]["entities (paper)"] == 43814
    assert by_name["NCBI"]["widths (paper)"] \
        == "53-309-514-1859-10215-107615-2069560"
    report(format_rows(rows, title="Table 1: Statistics of taxonomies"))
