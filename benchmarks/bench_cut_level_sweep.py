"""Extension bench — the saving/precision frontier over cut levels.

Section 5.3 notes that replacing *more* layers saves more maintenance
cost at an accuracy price.  This bench sweeps every Amazon cut level
and checks the trade-off's shape: saving grows monotonically as the
cut rises while precision decays, with the paper's (level 3, 59%,
~0.71 precision) point on the frontier.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.figures.ascii import bar_chart
from repro.hybrid.sweep import saving_at_precision, sweep_cut_levels


def test_cut_level_frontier(benchmark, report, config):
    sample = 250 if config.sample_size is None else 80
    points = once(benchmark, sweep_cut_levels, "amazon", sample)

    savings = [point.maintenance_saving for point in points]
    assert savings == sorted(savings)
    assert points[0].precision > points[-1].precision
    assert abs(points[0].maintenance_saving - 0.588) < 0.005

    # A 0.5-precision floor still admits a deeper-than-paper saving.
    frontier = saving_at_precision(points, floor=0.5)
    assert frontier is not None
    assert frontier.maintenance_saving \
        >= points[0].maintenance_saving

    report(format_rows([point.as_row() for point in points],
                       title="Extension: cut-level sweep (Amazon)"))
    report(bar_chart(
        {f"cut@{point.cut_level}": point.precision
         for point in points},
        title="Precision by cut level"))
