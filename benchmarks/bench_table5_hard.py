"""Bench T5 — regenerate Table 5 (overall results, hard datasets)."""

from __future__ import annotations

from conftest import once

from repro.experiments.overall import run_overall
from repro.questions.model import DatasetKind


def test_table5_hard_overall(benchmark, report, config, bench_harness):
    result = once(benchmark, run_overall, DatasetKind.HARD, config,
                  bench_harness)
    # Shape contract: measured cells track the paper's Table 5.
    assert result.mean_abs_accuracy_delta < 0.10
    assert result.mean_abs_miss_delta < 0.08
    matrix = result.matrix()
    # Who-wins shape: every model is better on eBay than on Glottolog.
    for model in config.models:
        assert matrix[model, "ebay"].accuracy \
            >= matrix[model, "glottolog"].accuracy - 0.05
    report(bench_harness.format_table(
        matrix, title="Table 5: overall results on hard datasets "
        f"(mean |dA| vs paper = {result.mean_abs_accuracy_delta:.3f})"))
