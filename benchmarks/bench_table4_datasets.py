"""Bench T4 — regenerate Table 4 (question dataset statistics)."""

from __future__ import annotations

from conftest import PAPER_SCALE, once

from repro.core.report import format_rows
from repro.experiments.config import ExperimentConfig
from repro.experiments.datasets import table4_rows


def test_table4_dataset_statistics(benchmark, report, config):
    rows = once(benchmark, table4_rows, config)
    totals = {row["taxonomy"]: row for row in rows
              if row["level"] == "total"}
    assert set(totals) == set(config.taxonomy_keys)
    if PAPER_SCALE:
        # At paper scale the easy/MCQ counts reproduce Table 4.
        assert totals["glottolog"]["easy"] == 2980
        assert totals["glottolog"]["mcq"] == 1490
    report(format_rows(rows, title="Table 4: Statistics of datasets"))


def test_table4_glottolog_at_paper_scale(benchmark, report):
    """Always-on paper-scale check for one taxonomy (fast enough)."""
    rows = once(benchmark, table4_rows,
                ExperimentConfig(taxonomy_keys=("glottolog",)))
    easy = [row["easy"] for row in rows if row["level"] != "total"]
    assert easy == [500, 564, 584, 600, 732]
