"""Bench T7 — regenerate Table 7 (overall results, MCQ datasets)."""

from __future__ import annotations

from statistics import fmean

from conftest import once

from repro.experiments.overall import run_overall
from repro.questions.model import DatasetKind


def test_table7_mcq_overall(benchmark, report, config, bench_harness):
    result = once(benchmark, run_overall, DatasetKind.MCQ, config,
                  bench_harness)
    assert result.mean_abs_accuracy_delta < 0.10
    matrix = result.matrix()
    # Providing options slashes miss rates (Section 4.1): averaged
    # over taxonomies, MCQ misses sit below hard-dataset misses.
    for model in ("GPT-4", "Llama-3-8B"):
        mcq_miss = fmean(matrix[model, key].miss_rate
                         for key in config.taxonomy_keys)
        hard_miss = fmean(
            bench_harness.run(model, key, DatasetKind.HARD)
            .metrics.miss_rate for key in config.taxonomy_keys)
        assert mcq_miss <= hard_miss + 0.01
    report(bench_harness.format_table(
        matrix, title="Table 7: overall results on MCQ datasets "
        f"(mean |dA| vs paper = {result.mean_abs_accuracy_delta:.3f})"))
