"""Bench RUN — run-ledger streaming overhead and resume speedup.

Measures the two costs the ledger design promises to keep small,
against a backend with a deterministic per-call latency (the same
endpoint simulation as ``bench_engine_throughput``: the ledger exists
for runs against real, slow endpoints, so that is the regime the
gates are calibrated for):

* **streaming overhead** — the same evaluation with and without a
  ledger sink attached (default ``durability="cell"``: every append
  flushed, fsync at cell boundaries).  Gate: <= 10% wall-time
  overhead.
* **resume speedup** — a run killed at 90% completion, resumed from
  its ledger (only the missing 10% of questions are re-asked), versus
  executing the same run cold.  Gate: >= 5x faster.

Run standalone for a seconds-scale smoke (used by ``scripts/check.sh``
and CI)::

    PYTHONPATH=src python benchmarks/bench_run_ledger.py --smoke
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import threading
import time

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools
from repro.runs import (RunLedger, RunRegistry, RunRequest, create_run,
                        execute_run, resume_run)

#: Pass thresholds (asserted by the pytest bench and ``--smoke``).
MAX_STREAMING_OVERHEAD = 0.10
MIN_RESUME_SPEEDUP = 5.0

REPS = 3


class LatencySimulatingModel(BaseChatModel):
    """A ChatModel answering like GPT-4 after a fixed sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        if self.latency_s:
            time.sleep(self.latency_s)
        return self._inner.generate(prompt)


class KilledMidRunError(RuntimeError):
    """The injected crash the killer resolver raises."""


class _KillerModel:
    """Wraps a model; dies once a shared call budget is spent."""

    def __init__(self, inner, counter: dict, lock: threading.Lock):
        self.inner = inner
        self.name = inner.name
        self._counter = counter
        self._lock = lock

    def generate(self, prompt: str) -> str:
        with self._lock:
            if self._counter["budget"] <= 0:
                raise KilledMidRunError("killed at 90%")
            self._counter["budget"] -= 1
        return self.inner.generate(prompt)


def _killer_resolver(budget: int, latency_s: float):
    counter = {"budget": budget}
    lock = threading.Lock()
    return lambda name: _KillerModel(
        LatencySimulatingModel(latency_s), counter, lock)


def _measure(sample_size: int = 60,
             latency_s: float = 0.001) -> list[dict[str, object]]:
    """Time in-memory vs ledgered evaluation, then cold vs resumed."""
    root = tempfile.mkdtemp(prefix="repro-bench-runs-")
    try:
        registry = RunRegistry(root)
        request = RunRequest(models=("GPT-4",),
                             taxonomy_keys=("ebay",),
                             sample_size=sample_size)
        pool = build_pools("ebay", sample_size=sample_size).total_pool(
            DatasetKind.HARD)

        # Warm the oracle's lazy indexes and the artifact store so the
        # one-time build cost lands in neither side of a comparison.
        EvaluationRunner().evaluate(LatencySimulatingModel(0.0), pool)

        # -- streaming overhead: same pool, with / without a ledger --
        # Drain pending writeback first: the ledger's cell-boundary
        # fsync otherwise pays for whatever a previous bench left in
        # the page cache, which the in-memory side never would.
        _drain_io()
        memory_times, ledger_times = [], []
        for _ in range(REPS):       # interleaved, so drift hits both
            memory_times.append(_time_in_memory(pool, latency_s))
            ledger_times.append(_time_ledgered(pool, latency_s, root))
        memory_s = min(memory_times)
        ledger_s = min(ledger_times)
        overhead = ledger_s / memory_s - 1.0

        # -- resume: kill at 90%, finish from the ledger ------------
        resolve = lambda name: LatencySimulatingModel(latency_s)
        cold_s = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            cold = execute_run(request, registry=registry,
                               resolve_model=resolve)
            cold_s = min(cold_s, time.perf_counter() - started)
        resume_s = float("inf")
        replayed = evaluated = 0
        for _ in range(2):
            run_id = create_run(request, registry=registry)
            try:
                execute_run(request, registry=registry, run_id=run_id,
                            resolve_model=_killer_resolver(
                                int(cold.evaluated * 0.9), latency_s))
            except KilledMidRunError:
                pass
            started = time.perf_counter()
            resumed = resume_run(run_id, registry=registry,
                                 resolve_model=resolve)
            resume_s = min(resume_s, time.perf_counter() - started)
            replayed, evaluated = resumed.replayed, resumed.evaluated
        speedup = cold_s / resume_s

        n = len(pool)
        return [
            {"mode": "in-memory", "n": n,
             "wall_s": f"{memory_s:.3f}", "gate": "-"},
            {"mode": "ledgered", "n": n,
             "wall_s": f"{ledger_s:.3f}",
             "gate": f"overhead {overhead:+.1%}"},
            {"mode": "cold run", "n": n,
             "wall_s": f"{cold_s:.3f}", "gate": "-"},
            {"mode": f"resume ({replayed} replayed, "
                     f"{evaluated} asked)", "n": n,
             "wall_s": f"{resume_s:.3f}",
             "gate": f"speedup {speedup:.1f}x"},
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _drain_io() -> None:
    try:
        os.sync()
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX
        pass


def _time_in_memory(pool, latency_s: float) -> float:
    runner = EvaluationRunner(keep_records=True)
    started = time.perf_counter()
    runner.evaluate(LatencySimulatingModel(latency_s), pool)
    return time.perf_counter() - started


def _time_ledgered(pool, latency_s: float, root: str) -> float:
    path = tempfile.mktemp(suffix=".jsonl", dir=root)
    started = time.perf_counter()
    with RunLedger(path) as ledger:
        ledger.run_started("bench")
        runner = EvaluationRunner(keep_records=True, ledger=ledger)
        runner.evaluate(LatencySimulatingModel(latency_s), pool)
        ledger.run_finished(1)
    return time.perf_counter() - started


def _gate(rows: list[dict[str, object]], prefix: str) -> float:
    row = next(row for row in rows
               if str(row["gate"]).startswith(prefix))
    value = str(row["gate"]).split()[-1]
    return float(value.rstrip("%x")) / (100.0 if "%" in value else 1.0)


def _assert_gates(rows: list[dict[str, object]]) -> None:
    overhead = _gate(rows, "overhead")
    assert overhead <= MAX_STREAMING_OVERHEAD, \
        f"ledger streaming overhead {overhead:.1%} exceeds " \
        f"{MAX_STREAMING_OVERHEAD:.0%}"
    speedup = _gate(rows, "speedup")
    assert speedup >= MIN_RESUME_SPEEDUP, \
        f"resume of a 90%-complete run is only {speedup:.1f}x " \
        f"faster than cold (gate: {MIN_RESUME_SPEEDUP:.0f}x)"


def test_run_ledger(benchmark, report):
    rows = once(benchmark, _measure)
    _assert_gates(rows)
    report(format_rows(
        rows, title="Run ledger: streaming overhead + resume "
                    "(1 ms simulated latency)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    smoke = "--smoke" in sys.argv
    table = _measure(sample_size=40 if smoke else 60)
    _assert_gates(table)
    print(format_rows(table, title="Run ledger smoke" if smoke
                      else "Run ledger"))
