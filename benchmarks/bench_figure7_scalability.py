"""Bench F7 — regenerate Figure 7 (scalability of model series).

Also measures the harness's own throughput on a simulated backend,
which is this reproduction's analogue of "average time costs during
inference" — real endpoints simply swap in behind the same interface.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.experiments.scalability import (efficiency_summary,
                                           figure7_rows,
                                           well_scaling_series)
from repro.llm.registry import get_model
from repro.questions.model import DatasetKind
from repro.questions.pools import default_pools


def test_figure7_cost_model(benchmark, report):
    rows = once(benchmark, figure7_rows)
    assert len(rows) == 14
    good = well_scaling_series()
    # Paper: "Flan-T5s, Vicunas, and Llama-3s present relatively good
    # scalability"; Falcon-40B does not.
    assert {"Flan-T5s", "Vicunas", "Llama-3s"} <= set(good)
    assert "Falcons" not in good
    rows.append({"series": "(exponent)", "model": "", "params_b": "",
                 "gpu_ram_gb": "",
                 "sec_per_question": str(efficiency_summary())})
    report(format_rows(
        rows, title="Figure 7: scalability of model series"))


def test_harness_throughput(benchmark, config):
    """Questions per second through the full prompt->parse loop."""
    pool = default_pools(
        "ebay", sample_size=config.sample_size).total_pool(
        DatasetKind.HARD)
    runner = EvaluationRunner()
    model = get_model("GPT-4")
    result = benchmark(runner.evaluate, model, pool)
    assert result.metrics.n == len(pool)
