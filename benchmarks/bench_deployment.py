"""Extension bench — deploying the open-source lineup (Section 3.2).

Plans the paper's fifteen open-source model deployments onto its
testbed (8x RTX 3090 + 4x A100) and verifies the whole lineup fits,
with the 70B-class models sharded across multiple cards.
"""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.data.paper_figures import SCALABILITY
from repro.llm.deployment import paper_fleet, plan_deployment


def test_open_source_lineup_deployment(benchmark, report):
    # The paper evaluates models one at a time; verify each deploys on
    # a fresh testbed (all fifteen at once need ~700 GB, more than the
    # fleet holds — a fact the planner surfaces too).
    def run():
        rows = []
        for model in SCALABILITY:
            plan = plan_deployment([model])
            assert plan.feasible, f"{model} unplaced"
            rows.extend(plan.as_rows())
        return rows

    rows = once(benchmark, run)
    by_model = {row["model"]: row for row in rows}
    # The 70B models cannot fit one card, even an A100.
    for name in ("Llama-2-70B", "Llama-3-70B"):
        assert by_model[name]["tensor_parallel"] >= 2
    # And the whole lineup simultaneously is correctly infeasible.
    assert not plan_deployment(list(SCALABILITY)).feasible
    report(format_rows(
        rows, title="Extension: per-model deployment on the paper's "
        "testbed (8x RTX 3090 + 4x A100)"))
