"""Bench OBS — tracing overhead gate (no-op vs. enabled tracer).

Runs the identical engine workload — a sleep-backed model standing in
for a network endpoint, fanned over worker threads — twice: once with
the default :data:`repro.obs.NULL_TRACER` and once with a recording
:class:`repro.obs.Tracer`.  Each variant is measured best-of-N, and
the gate asserts the enabled tracer costs at most 5% extra wall time
(plus a small absolute floor so a sub-second smoke run is not failed
by scheduler jitter).  This is the budget the tentpole promises:
instrumentation everywhere, observable cost nowhere.

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import time

from conftest import once

from repro.core.report import format_rows
from repro.core.runner import EvaluationRunner
from repro.engine.config import EngineConfig
from repro.engine.scheduler import EvaluationEngine
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.obs import NULL_TRACER, Tracer
from repro.questions.model import DatasetKind
from repro.questions.pools import build_pools

#: Maximum allowed slowdown of the enabled tracer vs. the no-op.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so short smoke runs tolerate OS jitter.
ABSOLUTE_SLACK_S = 0.010


class _SleepingModel(BaseChatModel):
    """GPT-4 answers behind a fixed GIL-releasing sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def _run_once(pool, latency_s: float, tracer) -> float:
    model = _SleepingModel(latency_s)
    engine = EvaluationEngine(
        EngineConfig(max_workers=4, cache=False), tracer=tracer)
    runner = EvaluationRunner(engine=engine)
    started = time.perf_counter()
    runner.evaluate(model, pool)
    return time.perf_counter() - started


def _measure(sample_size: int = 12, latency_s: float = 0.002,
             repeats: int = 3) -> dict[str, object]:
    """Best-of-N wall time for both tracer variants on one pool."""
    pool = build_pools("ebay", sample_size=sample_size).total_pool(
        DatasetKind.HARD)
    # Warm the oracle's lazy indexes outside the measurement.
    _run_once(pool, 0.0, NULL_TRACER)

    baseline_s = min(_run_once(pool, latency_s, NULL_TRACER)
                     for _ in range(repeats))
    tracer = Tracer()
    traced_s = min(_run_once(pool, latency_s, tracer)
                   for _ in range(repeats))
    overhead = traced_s / baseline_s - 1.0
    return {
        "n": len(pool),
        "baseline_s": baseline_s,
        "traced_s": traced_s,
        "overhead": overhead,
        "spans": len(tracer.spans()),
    }


def _rows(result: dict[str, object]) -> list[dict[str, object]]:
    return [{
        "n": result["n"],
        "null_tracer_s": f"{result['baseline_s']:.4f}",
        "tracer_s": f"{result['traced_s']:.4f}",
        "overhead": f"{result['overhead'] * 100:+.2f}%",
        "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        "spans": result["spans"],
    }]


def _within_budget(result: dict[str, object]) -> bool:
    excess = float(result["traced_s"]) - float(result["baseline_s"])
    return (excess
            <= float(result["baseline_s"]) * OVERHEAD_BUDGET
            + ABSOLUTE_SLACK_S)


def test_obs_overhead(benchmark, report):
    result = once(benchmark, _measure)
    # The enabled tracer recorded the full span tree...
    assert result["spans"] > 0
    # ...within the advertised wall-clock budget.
    assert _within_budget(result), (
        f"tracing overhead {result['overhead'] * 100:.2f}% exceeds "
        f"the {OVERHEAD_BUDGET * 100:.0f}% budget "
        f"(baseline {result['baseline_s']:.4f}s, "
        f"traced {result['traced_s']:.4f}s)")
    report(format_rows(_rows(result),
                       title="Tracing overhead (2 ms simulated "
                             "latency, 4 workers)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    outcome = _measure(sample_size=6, latency_s=0.002, repeats=2)
    print(format_rows(_rows(outcome), title="Tracing overhead smoke"))
    if not _within_budget(outcome):
        raise SystemExit("tracing overhead exceeds budget")
