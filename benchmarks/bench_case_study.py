"""Bench CS — regenerate the Section 5.3 case study.

Paper numbers: precision 0.713, recall 0.792, 59% of the Amazon
taxonomy's construction/maintenance cost saved.
"""

from __future__ import annotations

from conftest import PAPER_SCALE, once

from repro.core.report import format_rows
from repro.hybrid.case_study import CaseStudyConfig, run_case_study


def test_case_study_replacement(benchmark, report):
    config = CaseStudyConfig(
        sample_size=None if PAPER_SCALE else 150)
    result = once(benchmark, run_case_study, config)
    assert result.precision == 0.713 or abs(
        result.precision - 0.713) < 0.05
    assert abs(result.recall - 0.792) < 0.05
    assert abs(result.maintenance_saving - 0.588) < 0.005
    report(format_rows([{
        "precision (paper 0.713)": round(result.precision, 3),
        "recall (paper 0.792)": round(result.recall, 3),
        "f1": round(result.f1, 3),
        "saving (paper 59%)":
            f"{result.maintenance_saving * 100:.1f}%",
        "concepts": result.concepts_evaluated,
    }], title="Section 5.3: Amazon hybrid-replacement case study"))
