"""Bench F4 — regenerate Figure 4 (prompting-setting radar charts)."""

from __future__ import annotations

from conftest import once

from repro.core.report import format_rows
from repro.experiments.prompting import (REPRESENTATIVE_MODELS,
                                         run_prompting)
from repro.figures.ascii import radar_table
from repro.llm.prompting import PromptSetting


def test_figure4_prompting_settings(benchmark, report, config,
                                    bench_harness):
    result = once(benchmark, run_prompting, config,
                  REPRESENTATIVE_MODELS, bench=bench_harness)

    # Finding 4's shape: few-shot rescues Llama-2-7B from abstention...
    zero_miss = result.average("Llama-2-7B", PromptSetting.ZERO_SHOT,
                               "miss_rate")
    few_miss = result.average("Llama-2-7B", PromptSetting.FEW_SHOT,
                              "miss_rate")
    assert few_miss < zero_miss * 0.3
    # ...while GPT-4 barely moves under any setting.
    zero_acc = result.average("GPT-4", PromptSetting.ZERO_SHOT)
    for setting in (PromptSetting.FEW_SHOT, PromptSetting.COT):
        assert abs(result.average("GPT-4", setting) - zero_acc) < 0.06

    rows = [{
        "model": point.model,
        "taxonomy": point.taxonomy_key,
        "setting": point.setting,
        "accuracy": round(point.accuracy, 3),
        "miss_rate": round(point.miss_rate, 3),
    } for point in result.points]
    report(format_rows(
        rows, title="Figure 4: prompting settings (hard datasets)"))

    # One radar panel per model, spokes = taxonomies.
    spokes = tuple(config.taxonomy_keys)
    for model in REPRESENTATIVE_MODELS:
        series = {
            setting.value: [point.accuracy
                            for key in spokes
                            for point in result.series(model, setting)
                            if point.taxonomy_key == key]
            for setting in PromptSetting
        }
        report(radar_table(spokes, series,
                           title=f"Figure 4 radar: {model}"))
