"""Bench SERVE — SSE fan-out load gate (run alone vs. run + N viewers).

Executes the identical ledgered sweep — a sleep-backed model standing
in for a network endpoint — twice: once undisturbed, and once while
``CLIENTS`` concurrent HTTP clients stream the run live over the
:class:`repro.serve.ReproServer` SSE endpoint.  Because the server
fans a *single* :class:`repro.obs.LedgerFollower` out to every
subscriber, the read pressure on the run is independent of the
audience size; the gate asserts the served run costs at most 5%
extra wall time plus a small absolute floor, and that the p99
snapshot delivery latency (broadcast timestamp to client receipt)
stays under budget.  Every client's final streamed snapshot must be
bit-identical to its peers' and converged to the post-hoc ledger
state.

A machine-readable summary is written to
``benchmarks/.artifacts/serve_load_stats.json`` (uploaded by CI).

Run standalone for a sub-second smoke (used by ``scripts/check.sh``)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from conftest import once

from repro.core.report import format_rows
from repro.llm.base import BaseChatModel
from repro.llm.registry import get_model
from repro.runs import RunRegistry, RunRequest, create_run, \
    execute_run
from repro.serve import DEFAULT_TENANT, ReproServer

#: Concurrent SSE viewers on the one live run.
CLIENTS = 8
#: Maximum allowed slowdown of a served run vs. an unwatched one.
OVERHEAD_BUDGET = 0.05
#: Absolute slack (seconds) so short smoke runs tolerate OS jitter.
ABSOLUTE_SLACK_S = 0.020
#: Ceiling on the p99 broadcast-to-client snapshot latency.
P99_LATENCY_BUDGET_S = 0.5
#: Hub poll cadence — far harder than the 0.25 s serving default, so
#: the gate is conservative.
POLL_INTERVAL_S = 0.02

ARTIFACT = Path(__file__).parent / ".artifacts" / \
    "serve_load_stats.json"


class _SleepingModel(BaseChatModel):
    """GPT-4 answers behind a fixed GIL-releasing sleep."""

    def __init__(self, latency_s: float):
        super().__init__("GPT-4")
        self.latency_s = latency_s
        self._inner = get_model("GPT-4")

    def _respond(self, prompt: str) -> str:
        time.sleep(self.latency_s)
        return self._inner.generate(prompt)


def _stream(url: str, latencies: list[float],
            finals: list[str], slot: int,
            connected: threading.Event) -> None:
    """One SSE viewer: collect delivery latencies + final snapshot."""
    request = urllib.request.Request(url)
    last = None
    with urllib.request.urlopen(request, timeout=120) as response:
        connected.set()
        kind, data = None, None
        for line in response:
            line = line.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line.startswith("event: "):
                kind = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
            elif not line:
                if kind == "snapshot":
                    received = time.time()
                    last = data
                    latencies.append(
                        received - json.loads(data)["ts"])
                if kind == "done":
                    break
                kind, data = None, None
    finals[slot] = last


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _run_alone(request: RunRequest, registry: RunRegistry,
               latency_s: float) -> float:
    run_id = create_run(request, registry=registry)
    started = time.perf_counter()
    execute_run(request, registry=registry, run_id=run_id,
                resolve_model=lambda _name: _SleepingModel(latency_s))
    return time.perf_counter() - started


def _run_served(request: RunRequest, server: ReproServer,
                latency_s: float) -> dict[str, object]:
    """One run with ``CLIENTS`` live SSE viewers attached."""
    registry = server.registry_for(DEFAULT_TENANT)
    run_id = create_run(request, registry=registry)
    url = f"{server.url}/runs/{run_id}/events"
    latencies: list[list[float]] = [[] for _ in range(CLIENTS)]
    finals: list[str] = [None] * CLIENTS
    connected = [threading.Event() for _ in range(CLIENTS)]
    viewers = [threading.Thread(target=_stream,
                                args=(url, latencies[slot], finals,
                                      slot, connected[slot]))
               for slot in range(CLIENTS)]
    for viewer in viewers:
        viewer.start()
    # Time the steady state: every viewer is attached before the run
    # starts, so the measurement is pure fan-out pressure, not
    # connection setup.
    for event in connected:
        assert event.wait(timeout=30), "a viewer never connected"
    started = time.perf_counter()
    result = execute_run(
        request, registry=registry, run_id=run_id,
        resolve_model=lambda _name: _SleepingModel(latency_s))
    elapsed = time.perf_counter() - started
    for viewer in viewers:
        viewer.join(timeout=120)
    assert all(final is not None for final in finals), \
        "a viewer never received a snapshot"
    assert len(set(finals)) == 1, \
        "viewers' final snapshots are not bit-identical"
    final = json.loads(finals[0])
    expected = sum(cell.metrics.n for cell in result.cells.values())
    assert final["finished"] and final["status"] == "finished", \
        "streamed final snapshot did not converge to finished"
    assert final["questions_done"] == expected, (
        f"viewers saw {final['questions_done']} questions, "
        f"ledger holds {expected}")
    return {
        "elapsed_s": elapsed,
        "latencies": [value for per_client in latencies
                      for value in per_client],
        "snapshots": sum(len(per_client)
                         for per_client in latencies),
    }


def _measure(sample_size: int = 12, latency_s: float = 0.002,
             repeats: int = 3) -> dict[str, object]:
    """Best-of-N wall time alone vs. served to ``CLIENTS`` viewers."""
    request = RunRequest(models=("GPT-4",), taxonomy_keys=("ebay",),
                         sample_size=sample_size, workers=4)
    with tempfile.TemporaryDirectory() as root:
        with ReproServer(root=root, port=0,
                         poll_interval_s=POLL_INTERVAL_S) \
                .start() as server:
            registry = server.registry_for(DEFAULT_TENANT)
            # Warm the oracle's lazy indexes outside the measurement.
            _run_alone(request, registry, 0.0)
            alone_s = min(_run_alone(request, registry, latency_s)
                          for _ in range(repeats))
            served = min((_run_served(request, server, latency_s)
                          for _ in range(repeats)),
                         key=lambda outcome: outcome["elapsed_s"])
    latencies = served["latencies"]
    return {
        "clients": CLIENTS,
        "alone_s": alone_s,
        "served_s": served["elapsed_s"],
        "overhead": served["elapsed_s"] / alone_s - 1.0,
        "snapshots_delivered": served["snapshots"],
        "latency_p50_s": _percentile(latencies, 0.50),
        "latency_p99_s": _percentile(latencies, 0.99),
    }


def _rows(result: dict[str, object]) -> list[dict[str, object]]:
    return [{
        "clients": result["clients"],
        "alone_s": f"{result['alone_s']:.4f}",
        "served_s": f"{result['served_s']:.4f}",
        "overhead": f"{result['overhead'] * 100:+.2f}%",
        "budget": f"{OVERHEAD_BUDGET * 100:.0f}%",
        "snapshots": result["snapshots_delivered"],
        "p50_ms": f"{result['latency_p50_s'] * 1e3:.1f}",
        "p99_ms": f"{result['latency_p99_s'] * 1e3:.1f}",
    }]


def _check(result: dict[str, object]) -> list[str]:
    failures = []
    excess = float(result["served_s"]) - float(result["alone_s"])
    if excess > (float(result["alone_s"]) * OVERHEAD_BUDGET
                 + ABSOLUTE_SLACK_S):
        failures.append(
            f"serving overhead {result['overhead'] * 100:.2f}% "
            f"exceeds the {OVERHEAD_BUDGET * 100:.0f}% budget "
            f"(alone {result['alone_s']:.4f}s, "
            f"served {result['served_s']:.4f}s)")
    if result["latency_p99_s"] > P99_LATENCY_BUDGET_S:
        failures.append(
            f"p99 snapshot latency "
            f"{result['latency_p99_s'] * 1e3:.1f}ms exceeds the "
            f"{P99_LATENCY_BUDGET_S * 1e3:.0f}ms budget")
    return failures


def _write_artifact(result: dict[str, object]) -> None:
    ARTIFACT.parent.mkdir(parents=True, exist_ok=True)
    ARTIFACT.write_text(json.dumps(result, indent=1) + "\n",
                        encoding="utf-8")


def test_serve_load(benchmark, report):
    result = once(benchmark, _measure)
    _write_artifact(result)
    failures = _check(result)
    assert not failures, "; ".join(failures)
    report(format_rows(_rows(result),
                       title=f"SSE fan-out load ({CLIENTS} viewers, "
                             f"2 ms simulated latency, 4 workers)"))


if __name__ == "__main__":  # pragma: no cover - smoke entry point
    outcome = _measure(sample_size=6, latency_s=0.002, repeats=2)
    _write_artifact(outcome)
    print(format_rows(_rows(outcome),
                      title=f"SSE fan-out load smoke "
                            f"({CLIENTS} viewers)"))
    problems = _check(outcome)
    if problems:
        raise SystemExit("; ".join(problems))
